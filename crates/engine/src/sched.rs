//! Cost-aware batch scheduling: a per-class cost model, cost-ordered
//! (LPT) dispatch, and hand-rolled work-stealing deques.
//!
//! PR 7's bench made the problem concrete: per-class repair throughput
//! spans 18× (datarace ~608 cases/s vs validity ~11,074 cases/s), and a
//! bare shared counter hands jobs out in submission order — the corpus
//! groups cases by class, so one worker draws the expensive tail while
//! the others idle (worker case counts `[4, 1, 16, 21]`, utilization
//! 0.05–0.81). The fix is classic scheduling, hand-rolled because the
//! workspace vendors all deps (no crossbeam):
//!
//! 1. a [`CostModel`] predicts per-class job cost, seeded from static
//!    defaults (PR 7's measured per-class throughput) and refined from
//!    the `rb_obs` histograms the repair pipeline and engine already
//!    fill (`rustbrain_engine_job_wall_us`, with
//!    `rustbrain_repair_latency_sim_ms` as a relative fallback), or from
//!    a cost table persisted between runs;
//! 2. [`SchedPolicy::CostOrdered`] dispatches longest-predicted-first
//!    (LPT), so the expensive datarace/concurrency cases start first
//!    instead of last;
//! 3. [`SchedPolicy::Stealing`] (the default) seeds per-worker deques by
//!    greedy LPT assignment, workers self-pop in small chunks from the
//!    front, and an idle worker steals single jobs from the back of the
//!    busiest victim's deque — one mutex per deque, which at
//!    hundreds-of-jobs scale is far below contention.
//!
//! None of this can change results: seeds derive from case ids, jobs
//! start from the same read-only knowledge snapshot, and merges are
//! pinned to submission order — a policy only changes *when* a job runs,
//! never *what* it computes. The engine's determinism suite pins every
//! policy × worker count against the serial reference.
//!
//! [`model_schedule`] replays a policy's dispatch decisions under a
//! deterministic virtual clock over *measured* per-job durations — the
//! honest way to compare policies on a host without a core per worker
//! (where real wall-clock time-slices and the bench flags
//! `speedup_degraded`).

use rb_miri::UbClass;
use rb_obs::MetricsRegistry;
use std::collections::{BTreeMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Cost assumed for a class the model knows nothing about, in
/// milliseconds (roughly the corpus-wide mean of the static table).
pub const DEFAULT_COST_MS: f64 = 0.25;

/// Jobs a worker pops from its own deque per lock acquisition. Small
/// enough that a late steal can still rebalance the tail, large enough
/// that cheap jobs do not serialize on the deque mutex.
const SELF_POP_CHUNK: usize = 4;

/// Static per-class cost seed, in milliseconds per case: the reciprocal
/// of PR 7's measured per-class throughput (BENCH_engine.json
/// `per_class` rows). Only the *relative* magnitudes matter — LPT orders
/// by them and the live refinement replaces them with measured means as
/// soon as histograms exist.
const STATIC_COST_MS: [(UbClass, f64); 14] = [
    (UbClass::Alloc, 0.26),
    (UbClass::DanglingPointer, 0.45),
    (UbClass::Panic, 0.23),
    (UbClass::Provenance, 0.42),
    (UbClass::Uninit, 0.22),
    (UbClass::BothBorrow, 0.19),
    (UbClass::DataRace, 1.64),
    (UbClass::FuncCall, 0.18),
    (UbClass::FuncPointer, 0.19),
    (UbClass::StackBorrow, 0.10),
    (UbClass::Validity, 0.09),
    (UbClass::Unaligned, 0.41),
    (UbClass::TailCall, 0.16),
    (UbClass::Concurrency, 0.54),
];

/// Registry series the live refinement reads: real per-job wall time.
const JOB_WALL_US: &str = "rustbrain_engine_job_wall_us";
/// Fallback series: simulated repair latency (relative signal only).
const REPAIR_SIM_MS: &str = "rustbrain_repair_latency_sim_ms";

/// How a batch's jobs are handed to workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Submission order off a shared counter — PR 2's original dispatch,
    /// kept as the comparison baseline.
    Fifo,
    /// Longest-predicted-first off a shared counter: the cost model
    /// orders jobs descending, so expensive classes start first.
    CostOrdered,
    /// Per-worker deques seeded by greedy LPT assignment, chunked
    /// self-pops, single-job steals from the busiest victim.
    #[default]
    Stealing,
}

impl SchedPolicy {
    /// Every policy, in bench/report order.
    pub const ALL: [SchedPolicy; 3] = [
        SchedPolicy::Fifo,
        SchedPolicy::CostOrdered,
        SchedPolicy::Stealing,
    ];

    /// The wire/CLI/JSON label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::CostOrdered => "cost-ordered",
            SchedPolicy::Stealing => "stealing",
        }
    }

    /// Parses a CLI/wire label (the inverse of [`SchedPolicy::label`],
    /// plus common shorthands).
    #[must_use]
    pub fn parse(s: &str) -> Option<SchedPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "fifo" => Some(SchedPolicy::Fifo),
            "cost-ordered" | "cost" | "lpt" => Some(SchedPolicy::CostOrdered),
            "stealing" | "steal" => Some(SchedPolicy::Stealing),
            _ => None,
        }
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A typed cost-table error: the scheduler must never silently fall
/// back to defaults when the user pointed it at a table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostTableError(pub String);

impl std::fmt::Display for CostTableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cost table: {}", self.0)
    }
}

impl std::error::Error for CostTableError {}

/// Predicted per-class job cost in milliseconds.
///
/// Seeded from [`STATIC_COST_MS`] (or a persisted table), and — when
/// live refinement is on — overlaid at dispatch time with the measured
/// per-class means from the process-wide metrics registry, so a resident
/// daemon's scheduling sharpens as traffic accumulates. Predictions only
/// order jobs; a wrong prediction costs balance, never correctness.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    costs: BTreeMap<UbClass, f64>,
    live: bool,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::defaults()
    }
}

impl CostModel {
    /// The static seed table with live refinement on.
    #[must_use]
    pub fn defaults() -> CostModel {
        CostModel {
            costs: STATIC_COST_MS.iter().copied().collect(),
            live: true,
        }
    }

    /// A fixed table (no live refinement) — for tests and comparisons
    /// that must not depend on process-global metrics state.
    #[must_use]
    pub fn fixed(costs: BTreeMap<UbClass, f64>) -> CostModel {
        CostModel { costs, live: false }
    }

    /// Toggles dispatch-time refinement from the process-global metrics
    /// registry (builder-style).
    #[must_use]
    pub fn with_live_refinement(mut self, live: bool) -> CostModel {
        self.live = live;
        self
    }

    /// The stored (pre-refinement) prediction for `class`.
    #[must_use]
    pub fn cost_ms(&self, class: UbClass) -> f64 {
        self.costs.get(&class).copied().unwrap_or(DEFAULT_COST_MS)
    }

    /// The stored table (pre-refinement), for reporting.
    #[must_use]
    pub fn table(&self) -> &BTreeMap<UbClass, f64> {
        &self.costs
    }

    /// Folds an observed per-class mean into the stored table: a 50/50
    /// blend with the prior when one exists (so one noisy batch cannot
    /// erase history), the observation itself otherwise. Non-finite or
    /// non-positive observations are ignored.
    pub fn observe(&mut self, class: UbClass, observed_ms: f64) {
        if !observed_ms.is_finite() || observed_ms <= 0.0 {
            return;
        }
        let blended = match self.costs.get(&class) {
            Some(prior) => 0.5 * prior + 0.5 * observed_ms,
            None => observed_ms,
        };
        self.costs.insert(class, blended);
    }

    /// The table a dispatch actually orders by: the stored costs, with
    /// per-class measured means from `registry` overlaid when live
    /// refinement is on. Real wall time (`rustbrain_engine_job_wall_us`)
    /// wins; classes with only simulated-latency history
    /// (`rustbrain_repair_latency_sim_ms`) get the sim mean rescaled
    /// through the classes that have both (relative signal only).
    #[must_use]
    pub fn effective_from(&self, registry: &MetricsRegistry) -> BTreeMap<UbClass, f64> {
        let mut table = self.costs.clone();
        if !self.live {
            return table;
        }
        let all: Vec<UbClass> = UbClass::ALL
            .iter()
            .copied()
            .chain([UbClass::Compile])
            .collect();
        let mean = |name: &str, class: UbClass| {
            registry
                .histogram(name, Some(("class", class.label())))
                .filter(|h| h.count > 0)
                .map(|h| h.sum / h.count as f64)
        };
        let mut wall_anchor = 0.0f64; // Σ wall ms over classes with both
        let mut sim_anchor = 0.0f64; // Σ sim ms over the same classes
        let mut sim_only: Vec<(UbClass, f64)> = Vec::new();
        for &class in &all {
            let wall_ms = mean(JOB_WALL_US, class).map(|us| us / 1e3);
            let sim_ms = mean(REPAIR_SIM_MS, class);
            match (wall_ms, sim_ms) {
                (Some(wall), sim) => {
                    table.insert(class, wall);
                    if let Some(sim) = sim {
                        wall_anchor += wall;
                        sim_anchor += sim;
                    }
                }
                (None, Some(sim)) => sim_only.push((class, sim)),
                (None, None) => {}
            }
        }
        if sim_anchor > 0.0 {
            let scale = wall_anchor / sim_anchor;
            for (class, sim) in sim_only {
                table.insert(class, sim * scale);
            }
        }
        table
    }

    /// [`CostModel::effective_from`] against the process-global registry.
    #[must_use]
    pub fn effective(&self) -> BTreeMap<UbClass, f64> {
        self.effective_from(rb_obs::metrics())
    }

    /// Loads a persisted cost table (see [`CostModel::save`] for the
    /// format). The loaded model keeps live refinement on — the table is
    /// the seed, fresher histograms still win.
    pub fn load(path: &Path) -> Result<CostModel, CostTableError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CostTableError(format!("cannot read {}: {e}", path.display())))?;
        let mut costs = BTreeMap::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(label), Some(value), None) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(CostTableError(format!(
                    "line {}: expected `<class> <ms>`, got `{line}`",
                    n + 1
                )));
            };
            let class = UbClass::ALL
                .iter()
                .copied()
                .chain([UbClass::Compile])
                .find(|c| c.label() == label)
                .ok_or_else(|| {
                    CostTableError(format!("line {}: unknown class `{label}`", n + 1))
                })?;
            let ms: f64 = value
                .parse()
                .map_err(|_| CostTableError(format!("line {}: bad cost `{value}`", n + 1)))?;
            if !ms.is_finite() || ms <= 0.0 {
                return Err(CostTableError(format!(
                    "line {}: cost must be a positive finite number, got `{value}`",
                    n + 1
                )));
            }
            costs.insert(class, ms);
        }
        if costs.is_empty() {
            return Err(CostTableError(format!(
                "{} holds no cost entries",
                path.display()
            )));
        }
        Ok(CostModel { costs, live: true })
    }

    /// Persists the stored table: a `#`-comment header plus one
    /// `<class-label> <ms>` line per class, sorted by class. The next
    /// run's [`CostModel::load`] round-trips it.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut out = String::from("# rustbrain cost table v1: <class-label> <mean-ms-per-case>\n");
        for (class, ms) in &self.costs {
            out.push_str(&format!("{} {ms:.6}\n", class.label()));
        }
        std::fs::write(path, out)
    }
}

/// Telemetry of one dispatch: how the policy actually moved jobs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// The policy the batch dispatched under (its label).
    pub policy: String,
    /// Jobs taken from another worker's deque (always 0 for the shared-
    /// counter policies).
    pub steals: u64,
    /// Deepest per-worker deque at seeding time (for the shared-counter
    /// policies: the whole queue).
    pub max_queue_depth: usize,
}

/// Greedy LPT assignment: indices in descending predicted cost, each to
/// the worker with the least total predicted cost so far (ties to the
/// lowest worker index). Returns one cost-descending deque per worker.
fn lpt_assign(costs: &[f64], workers: usize) -> Vec<VecDeque<usize>> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    sort_by_cost_desc(&mut order, costs);
    let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
    let mut load = vec![0.0f64; workers];
    for index in order {
        let target = (0..workers)
            .min_by(|&a, &b| {
                load[a]
                    .partial_cmp(&load[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
            .unwrap_or(0);
        load[target] += costs[index];
        queues[target].push_back(index);
    }
    queues
}

/// Sorts job indices by descending predicted cost, submission index as
/// the deterministic tie-break.
fn sort_by_cost_desc(order: &mut [usize], costs: &[f64]) {
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
}

/// One worker's deque: the job queue behind a mutex plus a lock-free
/// depth mirror so steal victims can be picked without taking every
/// lock.
struct WorkQueue {
    jobs: Mutex<VecDeque<usize>>,
    depth: AtomicUsize,
}

impl WorkQueue {
    fn new(jobs: VecDeque<usize>) -> WorkQueue {
        let depth = AtomicUsize::new(jobs.len());
        WorkQueue {
            jobs: Mutex::new(jobs),
            depth,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
        self.jobs.lock().expect("work deque lock poisoned")
    }
}

enum Kind {
    /// One shared queue in `order`, consumed through an atomic cursor
    /// (FIFO and cost-ordered dispatch differ only in the order).
    Shared {
        order: Vec<usize>,
        next: AtomicUsize,
    },
    /// One deque per worker (work stealing).
    Deques { queues: Vec<WorkQueue> },
}

/// A built dispatch for one batch: hand each worker a [`WorkerLane`] and
/// drain it. Every submitted job index comes out of exactly one lane
/// exactly once, in a policy-dependent order.
pub struct Dispatcher {
    kind: Kind,
    steals: AtomicU64,
    max_queue_depth: usize,
}

impl Dispatcher {
    /// Builds the dispatch for `costs.len()` jobs across `workers`
    /// workers under `policy`. `costs` are the per-job predicted costs
    /// in submission order (only their relative order matters).
    #[must_use]
    pub fn build(policy: SchedPolicy, costs: &[f64], workers: usize) -> Dispatcher {
        let workers = workers.max(1);
        let (kind, max_queue_depth) = match policy {
            SchedPolicy::Fifo => {
                let order: Vec<usize> = (0..costs.len()).collect();
                let depth = order.len();
                (
                    Kind::Shared {
                        order,
                        next: AtomicUsize::new(0),
                    },
                    depth,
                )
            }
            SchedPolicy::CostOrdered => {
                let mut order: Vec<usize> = (0..costs.len()).collect();
                sort_by_cost_desc(&mut order, costs);
                let depth = order.len();
                (
                    Kind::Shared {
                        order,
                        next: AtomicUsize::new(0),
                    },
                    depth,
                )
            }
            SchedPolicy::Stealing => {
                let queues = lpt_assign(costs, workers);
                let depth = queues.iter().map(VecDeque::len).max().unwrap_or(0);
                (
                    Kind::Deques {
                        queues: queues.into_iter().map(WorkQueue::new).collect(),
                    },
                    depth,
                )
            }
        };
        Dispatcher {
            kind,
            steals: AtomicU64::new(0),
            max_queue_depth,
        }
    }

    /// The lane worker `worker` drains (callable once per worker).
    #[must_use]
    pub fn lane(&self, worker: usize) -> WorkerLane<'_> {
        WorkerLane {
            dispatcher: self,
            worker,
            local: VecDeque::new(),
        }
    }

    /// Jobs stolen across workers so far (0 under shared-counter
    /// policies).
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Deepest queue at seeding time.
    #[must_use]
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }
}

/// One dispatched job as seen by the worker that will run it: the
/// submission index plus whether the lane took it from another worker's
/// deque. The flag feeds trace enrichment (`engine.job` spans carry
/// `stolen`) so placement analyses can tell seeded work from rebalanced
/// work; shared-counter policies never steal, so it is always `false`
/// there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Index of the job in submission order.
    pub index: usize,
    /// `true` iff this job came off another worker's deque.
    pub stolen: bool,
}

/// One worker's view of the dispatch: pops its own work (chunked, so
/// cheap jobs amortize the deque lock) and steals when dry.
pub struct WorkerLane<'a> {
    dispatcher: &'a Dispatcher,
    worker: usize,
    local: VecDeque<usize>,
}

impl Iterator for WorkerLane<'_> {
    type Item = Assignment;

    /// The next job for this worker, or `None` when the batch is
    /// drained. Jobs held in another lane's local chunk are *not* up for
    /// stealing — they are owned and will be executed by that worker.
    fn next(&mut self) -> Option<Assignment> {
        if let Some(index) = self.local.pop_front() {
            return Some(Assignment {
                index,
                stolen: false,
            });
        }
        match &self.dispatcher.kind {
            Kind::Shared { order, next } => {
                let at = next.fetch_add(1, Ordering::Relaxed);
                order.get(at).copied().map(|index| Assignment {
                    index,
                    stolen: false,
                })
            }
            Kind::Deques { queues } => self.pop_or_steal(queues),
        }
    }
}

impl WorkerLane<'_> {
    fn pop_or_steal(&mut self, queues: &[WorkQueue]) -> Option<Assignment> {
        // Own deque first: take a small chunk from the front under one
        // lock acquisition.
        if let Some(own) = queues.get(self.worker) {
            let mut jobs = own.lock();
            let take = SELF_POP_CHUNK.min(jobs.len());
            for _ in 0..take {
                self.local
                    .push_back(jobs.pop_front().expect("len-checked pop"));
            }
            drop(jobs);
            if take > 0 {
                own.depth.fetch_sub(take, Ordering::Relaxed);
                return self.local.pop_front().map(|index| Assignment {
                    index,
                    stolen: false,
                });
            }
        }
        // Steal: single jobs from the back of the deepest victim, until
        // every deque is observably empty. The depth mirrors are
        // heuristic — a raced-away victim just means another scan.
        loop {
            let victim = queues
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != self.worker)
                .map(|(i, q)| (q.depth.load(Ordering::Relaxed), i))
                .filter(|(depth, _)| *depth > 0)
                .max_by_key(|&(depth, i)| (depth, std::cmp::Reverse(i)));
            let (_, victim) = victim?;
            let stolen = {
                let mut jobs = queues[victim].lock();
                jobs.pop_back()
            };
            if let Some(index) = stolen {
                queues[victim].depth.fetch_sub(1, Ordering::Relaxed);
                self.dispatcher.steals.fetch_add(1, Ordering::Relaxed);
                return Some(Assignment {
                    index,
                    stolen: true,
                });
            }
            // Lost the race to the victim's own pops; rescan.
        }
    }
}

/// Outcome of a virtual-clock replay of one policy (see
/// [`model_schedule`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ModeledSchedule {
    /// Modeled batch wall time: the busiest worker's finish time.
    pub makespan_ms: f64,
    /// Modeled per-worker busy time, worker order.
    pub busy_ms: Vec<f64>,
    /// Modeled per-worker case counts, worker order.
    pub worker_cases: Vec<usize>,
    /// Steals the modeled stealing run performed (0 for shared-counter
    /// policies).
    pub steals: u64,
}

impl ModeledSchedule {
    /// Modeled speedup over a serial run of the same jobs: total work
    /// divided by the makespan (0 for an empty batch).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        let total: f64 = self.busy_ms.iter().sum();
        if self.makespan_ms > 0.0 {
            total / self.makespan_ms
        } else {
            0.0
        }
    }
}

/// Replays `policy`'s dispatch decisions under a deterministic virtual
/// clock: `predicted` orders the jobs (what the scheduler knew),
/// `durations` advances the clock (what actually happened, e.g. measured
/// per-job wall times from a serial sweep). The free-earliest worker
/// always takes the next job — an idealized N-core machine, which is
/// exactly what a host without N free cores cannot measure directly.
#[must_use]
pub fn model_schedule(
    policy: SchedPolicy,
    predicted: &[f64],
    durations: &[f64],
    workers: usize,
) -> ModeledSchedule {
    assert_eq!(predicted.len(), durations.len(), "one prediction per job");
    let workers = workers.max(1);
    let mut clock = vec![0.0f64; workers];
    let mut cases = vec![0usize; workers];
    let mut steals = 0u64;

    // The next free worker, ties to the lowest index (matches the
    // atomic-counter race resolution only statistically, but the model
    // is deterministic — which is the point).
    let next_worker = |clock: &[f64]| {
        (0..clock.len())
            .min_by(|&a, &b| {
                clock[a]
                    .partial_cmp(&clock[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
            .unwrap_or(0)
    };

    match policy {
        SchedPolicy::Fifo | SchedPolicy::CostOrdered => {
            let mut order: Vec<usize> = (0..predicted.len()).collect();
            if policy == SchedPolicy::CostOrdered {
                sort_by_cost_desc(&mut order, predicted);
            }
            for index in order {
                let w = next_worker(&clock);
                clock[w] += durations[index];
                cases[w] += 1;
            }
        }
        SchedPolicy::Stealing => {
            let mut queues = lpt_assign(predicted, workers);
            let mut remaining: Vec<f64> = queues
                .iter()
                .map(|q| q.iter().map(|&i| predicted[i]).sum())
                .collect();
            let mut left: usize = queues.iter().map(VecDeque::len).sum();
            while left > 0 {
                let w = next_worker(&clock);
                let index = if let Some(index) = queues[w].pop_front() {
                    remaining[w] -= predicted[index];
                    index
                } else {
                    // Steal one job from the back of the deque with the
                    // most predicted work remaining.
                    let victim = (0..workers)
                        .filter(|&v| v != w && !queues[v].is_empty())
                        .max_by(|&a, &b| {
                            remaining[a]
                                .partial_cmp(&remaining[b])
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(b.cmp(&a))
                        })
                        .expect("left > 0 implies a non-empty deque");
                    let index = queues[victim].pop_back().expect("victim is non-empty");
                    remaining[victim] -= predicted[index];
                    steals += 1;
                    index
                };
                clock[w] += durations[index];
                cases[w] += 1;
                left -= 1;
            }
        }
    }
    let makespan_ms = clock.iter().copied().fold(0.0f64, f64::max);
    ModeledSchedule {
        makespan_ms,
        busy_ms: clock,
        worker_cases: cases,
        steals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels_round_trip() {
        for policy in SchedPolicy::ALL {
            assert_eq!(SchedPolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(SchedPolicy::parse("lpt"), Some(SchedPolicy::CostOrdered));
        assert_eq!(SchedPolicy::parse("steal"), Some(SchedPolicy::Stealing));
        assert_eq!(SchedPolicy::parse("frobnicate"), None);
        assert_eq!(SchedPolicy::default(), SchedPolicy::Stealing);
    }

    #[test]
    fn static_costs_order_expensive_classes_first() {
        let model = CostModel::defaults();
        // The 18× spread the bench measured must survive in the seed.
        assert!(model.cost_ms(UbClass::DataRace) > 10.0 * model.cost_ms(UbClass::Validity));
        assert!(model.cost_ms(UbClass::Concurrency) > model.cost_ms(UbClass::StackBorrow));
        // Unknown classes cost the default, not zero (zero would sort
        // them last *and* starve LPT of information).
        assert!(model.cost_ms(UbClass::Compile) > 0.0);
    }

    #[test]
    fn cost_table_round_trips_and_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("rb_sched_table_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("costs.tbl");
        let mut model = CostModel::defaults();
        model.observe(UbClass::DataRace, 3.0);
        model.save(&path).unwrap();
        let loaded = CostModel::load(&path).unwrap();
        assert_eq!(loaded.table(), model.table());

        std::fs::write(&path, "frobnicate 1.0\n").unwrap();
        assert!(CostModel::load(&path).is_err(), "unknown class accepted");
        std::fs::write(&path, "alloc not-a-number\n").unwrap();
        assert!(CostModel::load(&path).is_err(), "bad float accepted");
        std::fs::write(&path, "alloc -1.0\n").unwrap();
        assert!(CostModel::load(&path).is_err(), "negative cost accepted");
        std::fs::write(&path, "# only comments\n").unwrap();
        assert!(CostModel::load(&path).is_err(), "empty table accepted");
        assert!(
            CostModel::load(&dir.join("missing.tbl")).is_err(),
            "missing file must be a typed error, not a silent default"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observe_blends_with_the_prior() {
        let mut model = CostModel::fixed([(UbClass::Alloc, 1.0)].into_iter().collect());
        model.observe(UbClass::Alloc, 3.0);
        assert!((model.cost_ms(UbClass::Alloc) - 2.0).abs() < 1e-12);
        // First sighting of a class takes the observation outright.
        model.observe(UbClass::Panic, 7.0);
        assert!((model.cost_ms(UbClass::Panic) - 7.0).abs() < 1e-12);
        // Garbage observations change nothing.
        model.observe(UbClass::Alloc, f64::NAN);
        model.observe(UbClass::Alloc, -1.0);
        assert!((model.cost_ms(UbClass::Alloc) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn live_refinement_prefers_wall_history() {
        let reg = MetricsRegistry::new();
        // alloc: wall history says 2 ms/case (vs the 0.26 ms seed).
        for _ in 0..4 {
            reg.observe(
                JOB_WALL_US,
                Some(("class", "alloc")),
                2_000.0,
                rb_obs::REAL_US_BUCKETS,
            );
            reg.observe(
                REPAIR_SIM_MS,
                Some(("class", "alloc")),
                40_000.0,
                rb_obs::SIM_MS_BUCKETS,
            );
        }
        // panic: only simulated history, at half alloc's sim cost — the
        // anchor classes (alloc) set the sim→wall scale.
        reg.observe(
            REPAIR_SIM_MS,
            Some(("class", "panic")),
            20_000.0,
            rb_obs::SIM_MS_BUCKETS,
        );
        let table = CostModel::defaults().effective_from(&reg);
        assert!((table[&UbClass::Alloc] - 2.0).abs() < 1e-9);
        assert!((table[&UbClass::Panic] - 1.0).abs() < 1e-9);
        // Classes with no history keep their seed.
        assert!((table[&UbClass::DataRace] - 1.64).abs() < 1e-12);
        // A non-live model ignores the registry entirely.
        let frozen = CostModel::defaults().with_live_refinement(false);
        assert!((frozen.effective_from(&reg)[&UbClass::Alloc] - 0.26).abs() < 1e-12);
    }

    #[test]
    fn lpt_assignment_balances_predicted_load() {
        // One huge job and six small ones across two workers: LPT puts
        // the huge job alone and spreads the rest.
        let costs = [0.1, 0.1, 6.0, 0.1, 0.1, 0.1, 0.1];
        let queues = lpt_assign(&costs, 2);
        let loads: Vec<f64> = queues
            .iter()
            .map(|q| q.iter().map(|&i| costs[i]).sum())
            .collect();
        assert!((loads[0] - 6.0).abs() < 1e-9, "{loads:?}");
        assert!((loads[1] - 0.6).abs() < 1e-9, "{loads:?}");
        // Every job assigned exactly once.
        let mut all: Vec<usize> = queues.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..costs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn every_policy_drains_every_job_exactly_once() {
        let costs: Vec<f64> = (0..97).map(|i| f64::from(i % 7) + 0.1).collect();
        for policy in SchedPolicy::ALL {
            for workers in [1usize, 3, 8] {
                let dispatcher = Dispatcher::build(policy, &costs, workers);
                let mut seen: Vec<Assignment> = Vec::new();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let dispatcher = &dispatcher;
                            scope.spawn(move || dispatcher.lane(w).collect::<Vec<Assignment>>())
                        })
                        .collect();
                    for handle in handles {
                        seen.extend(handle.join().unwrap());
                    }
                });
                // The stolen flags must agree with the dispatcher's own
                // steal counter — they are the same events, observed
                // from the two ends.
                let flagged = seen.iter().filter(|a| a.stolen).count() as u64;
                assert_eq!(
                    flagged,
                    dispatcher.steals(),
                    "{policy} at {workers} workers miscounted steals"
                );
                let mut indices: Vec<usize> = seen.iter().map(|a| a.index).collect();
                indices.sort_unstable();
                assert_eq!(
                    indices,
                    (0..costs.len()).collect::<Vec<_>>(),
                    "{policy} at {workers} workers lost or duplicated jobs"
                );
                if policy != SchedPolicy::Stealing {
                    assert_eq!(dispatcher.steals(), 0, "{policy} cannot steal");
                }
            }
        }
    }

    #[test]
    fn cost_ordered_dispatch_is_longest_first() {
        let costs = [1.0, 5.0, 3.0, 5.0];
        let dispatcher = Dispatcher::build(SchedPolicy::CostOrdered, &costs, 1);
        let order: Vec<usize> = dispatcher.lane(0).map(|a| a.index).collect();
        // Descending cost, submission index breaking the 5.0 tie.
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn stealing_rebalances_a_poisoned_seed() {
        // Adversarial predictions: the model thinks job 0 is huge so LPT
        // gives worker 0 only job 0 — but *every* job is actually cheap,
        // so worker 0 finishes instantly and must steal to stay busy.
        let predicted = [100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let dispatcher = Dispatcher::build(SchedPolicy::Stealing, &predicted, 2);
        let got: Vec<Assignment> = dispatcher.lane(0).collect();
        // Worker 0 drained its own job and then stole the rest (worker 1
        // never ran).
        assert_eq!(got.len(), predicted.len());
        assert!(dispatcher.steals() > 0, "idle worker never stole");
        // Everything beyond worker 0's seeded deque carries the flag.
        assert!(got.iter().any(|a| a.stolen), "steals left no stolen flags");
        assert!(
            got.iter().filter(|a| a.stolen).count() as u64 == dispatcher.steals(),
            "stolen flags disagree with the steal counter"
        );
    }

    #[test]
    fn modeled_stealing_beats_fifo_on_skewed_costs() {
        // The bench's shape in miniature: a long expensive tail at the
        // end of submission order (the corpus groups classes together).
        let mut durations = vec![0.1f64; 60];
        durations.extend([2.0; 6]);
        let predicted = durations.clone(); // a perfect model
        let fifo = model_schedule(SchedPolicy::Fifo, &predicted, &durations, 4);
        let lpt = model_schedule(SchedPolicy::CostOrdered, &predicted, &durations, 4);
        let steal = model_schedule(SchedPolicy::Stealing, &predicted, &durations, 4);
        let total: f64 = durations.iter().sum();
        for m in [&fifo, &lpt, &steal] {
            // Work is conserved and the makespan bounded by serial time.
            assert!((m.busy_ms.iter().sum::<f64>() - total).abs() < 1e-9);
            assert_eq!(m.worker_cases.iter().sum::<usize>(), durations.len());
            assert!(m.makespan_ms <= total + 1e-9);
        }
        assert!(
            lpt.makespan_ms <= fifo.makespan_ms + 1e-9,
            "LPT must not lose to FIFO: {} vs {}",
            lpt.makespan_ms,
            fifo.makespan_ms
        );
        assert!(
            steal.makespan_ms <= fifo.makespan_ms + 1e-9,
            "stealing must not lose to FIFO: {} vs {}",
            steal.makespan_ms,
            fifo.makespan_ms
        );
        // On this shape FIFO strands the tail on few workers; the
        // cost-aware policies land near the perfect split.
        assert!(steal.speedup() > fifo.speedup());
        assert!(steal.speedup() > 2.0, "speedup {}", steal.speedup());
    }

    #[test]
    fn modeled_empty_and_single_worker_edges() {
        let empty = model_schedule(SchedPolicy::Stealing, &[], &[], 4);
        assert_eq!(empty.makespan_ms, 0.0);
        assert_eq!(empty.speedup(), 0.0);
        let one = model_schedule(SchedPolicy::Stealing, &[1.0, 2.0], &[1.0, 2.0], 1);
        assert!((one.makespan_ms - 3.0).abs() < 1e-12);
        assert!((one.speedup() - 1.0).abs() < 1e-12);
        assert_eq!(one.steals, 0);
    }
}
