//! # rb-engine — parallel batch-repair engine
//!
//! The execution subsystem of the RustBrain reproduction: fans repair
//! jobs out across a fixed-size worker pool (`std::thread` + channels —
//! no external runtime) and almost never pays for the same oracle verdict
//! twice, by keying verdicts on *hashed program structure* in a sharded,
//! content-addressed cache ([`cache::OracleCache`]) — at most one verdict
//! per structurally distinct program is ever *stored*, though two workers
//! racing on the same first sighting may both execute the oracle once.
//!
//! Three guarantees shape the design:
//!
//! 1. **Determinism** — a batch's merged [`CaseResult`] stream is
//!    byte-identical for any worker count and any scheduling: each job
//!    builds a fresh system whose RNG seed derives only from the batch
//!    seed and the case id ([`job::derive_case_seed`]), and results are
//!    merged back into submission order.
//! 2. **Soundness of caching** — the oracle is pure, so the cache can
//!    only change *when* a verdict is computed, never *what* it is; a
//!    64-bit key collision is verified against the stored program and
//!    degrades to an extra oracle run, not a wrong verdict.
//! 3. **Observability** — every batch reports throughput, per-worker
//!    utilization and cache effectiveness as an [`EngineStats`] that
//!    serializes to JSON (`BENCH_engine.json` tracks it across PRs).
//!
//! Stateful sequential sweeps (where a system learns across cases, as in
//! the paper's experiments) run on the engine's sequential lane
//! ([`Engine::run_stateful`]) and still share the oracle cache; the
//! parallel path ([`Engine::run_batch`]) trades cross-case learning for
//! scheduling freedom.
//!
//! ## Example
//!
//! ```
//! use rb_engine::{Engine, SystemSpec, run_serial_reference};
//! use rb_dataset::Corpus;
//! use rb_miri::UbClass;
//!
//! let corpus = Corpus::generate(1, 2, &[UbClass::Alloc]);
//! let spec = SystemSpec::rust_assistant();
//! let parallel = Engine::new(4).run_batch(&spec, &corpus.cases, 42);
//! let serial = run_serial_reference(&spec, &corpus.cases, 42);
//! assert_eq!(parallel.results, serial);
//! assert!(parallel.stats.cases_per_sec > 0.0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod job;
pub mod stats;
pub mod system;

pub use cache::{program_key, CacheStats, OracleCache};
pub use engine::{run_serial_reference, BatchOutcome, Engine};
pub use job::{derive_case_seed, JobResult, JobSpec};
pub use stats::EngineStats;
pub use system::{CaseResult, System, SystemSpec};
