//! # rb-engine — parallel batch-repair engine
//!
//! The execution subsystem of the RustBrain reproduction: fans repair
//! jobs out across a fixed-size worker pool (`std::thread` + channels —
//! no external runtime) and almost never pays for the same oracle verdict
//! twice, by keying verdicts on *hashed program structure* in a sharded,
//! content-addressed cache ([`cache::OracleCache`]) — at most one verdict
//! per structurally distinct program is ever *stored*, though two workers
//! racing on the same first sighting may both execute the oracle once.
//!
//! The cache reaches the *whole* stack through the [`rb_miri::Oracle`]
//! seam: the engine builds every system with a [`CachedOracle`] injected
//! ([`SystemSpec::build_with`]), so the slow-thinking executor's inner
//! verifications, rollback re-verification, the baselines' repair loops
//! and the gold-reference runs all share one process-wide verdict store.
//! [`Engine::direct`] swaps in [`rb_miri::DirectOracle`] instead, and CI
//! diffs the two result streams to pin their equivalence.
//!
//! Four guarantees shape the design:
//!
//! 1. **Determinism** — a batch's merged [`CaseResult`] stream is
//!    byte-identical for any worker count and any scheduling: each job
//!    builds a fresh system whose RNG seed derives only from the batch
//!    seed and the case id ([`job::derive_case_seed`]), and results are
//!    merged back into submission order.
//! 2. **Soundness of caching** — the oracle is pure, so the cache can
//!    only change *when* a verdict is computed, never *what* it is; a
//!    64-bit key collision is verified against the stored program and
//!    degrades to an extra oracle run, not a wrong verdict; a bounded
//!    cache ([`OracleCache::bounded`], clock eviction) only re-executes
//!    evicted verdicts, it never changes them.
//! 3. **Cross-case learning at scale** — every job starts from the same
//!    read-only knowledge-base snapshot and records its inserts into a
//!    [`rustbrain::KbDelta`]; the engine merges the deltas back in
//!    submission order after the batch ([`Engine::run_batch_learned`]),
//!    so the merged base is identical for any `--jobs N` and can seed
//!    the next batch — the paper's self-learning, recovered in parallel.
//! 4. **Observability** — every batch reports throughput, per-worker
//!    utilization, cache effectiveness, the executed-vs-cached oracle
//!    split and the knowledge merge as an [`EngineStats`] that
//!    serializes to JSON (`BENCH_engine.json` tracks it across PRs).
//!
//! Stateful sequential sweeps (where a system learns across cases, as in
//! the paper's experiments) run on the engine's sequential lane
//! ([`Engine::run_stateful`]) and still share the oracle cache.
//!
//! ## Example
//!
//! ```
//! use rb_engine::{Engine, SystemSpec, run_serial_reference};
//! use rb_dataset::Corpus;
//! use rb_miri::UbClass;
//!
//! let corpus = Corpus::generate(1, 2, &[UbClass::Alloc]);
//! let spec = SystemSpec::rust_assistant();
//! let parallel = Engine::new(4).run_batch(&spec, &corpus.cases, 42);
//! let serial = run_serial_reference(&spec, &corpus.cases, 42);
//! assert_eq!(parallel.results, serial);
//! assert!(parallel.stats.cases_per_sec > 0.0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod job;
pub mod sched;
pub mod stats;
pub mod system;

pub use cache::{program_key, CacheStats, CachedOracle, OracleCache};
pub use engine::{run_serial_reference, BatchOutcome, Engine};
pub use job::{derive_case_seed, JobResult, JobSpec};
pub use sched::{model_schedule, Assignment, CostModel, ModeledSchedule, SchedPolicy, SchedStats};
pub use stats::{results_to_json, EngineStats, KbMergeStats};
pub use system::{CaseResult, System, SystemSpec};
