//! The sharded, content-addressed oracle cache.
//!
//! The oracle ([`rb_miri::run_program`]) is deterministic: a program's
//! verdict depends only on its AST. The cache therefore keys verdicts by
//! *hashed program structure* — not source text — so two jobs that reach
//! the same program through different whitespace, comments or printing
//! round-trips share one oracle execution. Entries live behind
//! [`RwLock`]-protected shards so concurrent workers contend only when
//! their keys land in the same shard; hit/miss counters are lock-free
//! atomics.
//!
//! A key collision (two structurally different programs hashing alike) is
//! handled, not assumed away: each bucket stores the full program next to
//! its verdict and a hit requires structural equality, so a collision
//! degrades to an extra oracle run, never to a wrong verdict.

use rb_lang::Program;
use rb_miri::{run_program, MiriReport};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of independent shards. A power of two so the shard index is a
/// cheap mask of the content key.
const SHARD_COUNT: usize = 16;

/// The content key of a program: a structural hash over its AST.
///
/// Programs that print and re-parse to the same structure map to the same
/// key; programs that differ in any statement, type or literal map to
/// different keys (modulo 64-bit collisions, which the cache verifies
/// against).
#[must_use]
pub fn program_key(program: &Program) -> u64 {
    let mut hasher = DefaultHasher::new();
    program.hash(&mut hasher);
    hasher.finish()
}

/// One cached verdict: the program is stored alongside the report so hits
/// are confirmed by structural equality (collision guard).
struct CacheEntry {
    program: Program,
    report: Arc<MiriReport>,
}

type Shard = RwLock<HashMap<u64, Vec<CacheEntry>>>;

/// Point-in-time counters of a cache (see [`OracleCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to execute the oracle.
    pub misses: u64,
    /// Distinct programs stored.
    pub entries: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded `hash(Program) → MiriReport` map shared across workers.
pub struct OracleCache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for OracleCache {
    fn default() -> OracleCache {
        OracleCache::new()
    }
}

impl OracleCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> OracleCache {
        OracleCache {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The process-wide cache shared by every engine-backed corpus run
    /// (the experiment harness re-generates identical gold programs many
    /// times over; this is where that redundancy dies).
    #[must_use]
    pub fn global() -> Arc<OracleCache> {
        static GLOBAL: OnceLock<Arc<OracleCache>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(OracleCache::new())))
    }

    fn shard(&self, key: u64) -> &Shard {
        &self.shards[(key as usize) & (SHARD_COUNT - 1)]
    }

    /// The oracle verdict for `program` plus whether it was served from
    /// the cache, so callers can attribute the hit/miss to their own
    /// accounting (the engine's per-batch telemetry needs this — the
    /// cache-wide counters are shared by every concurrent batch).
    pub fn lookup(&self, program: &Program) -> (Arc<MiriReport>, bool) {
        let key = program_key(program);
        let shard = self.shard(key);
        {
            let read = shard.read().expect("oracle cache shard poisoned");
            if let Some(entries) = read.get(&key) {
                if let Some(e) = entries.iter().find(|e| &e.program == program) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (Arc::clone(&e.report), true);
                }
            }
        }
        // Miss: run the oracle outside any lock, then publish.
        let report = Arc::new(run_program(program));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut write = shard.write().expect("oracle cache shard poisoned");
        let entries = write.entry(key).or_default();
        if let Some(e) = entries.iter().find(|e| &e.program == program) {
            // A racing worker published the same program first; keep one
            // copy (the verdicts are identical — the oracle is pure).
            return (Arc::clone(&e.report), false);
        }
        entries.push(CacheEntry {
            program: program.clone(),
            report: Arc::clone(&report),
        });
        (report, false)
    }

    /// The oracle verdict for `program`, executing the oracle only on the
    /// first structurally distinct sighting.
    pub fn report(&self, program: &Program) -> Arc<MiriReport> {
        self.lookup(program).0
    }

    /// The observable outputs of `program` under the oracle (the gold
    /// reference a repair must reproduce), cached like [`report`].
    ///
    /// [`report`]: OracleCache::report
    #[must_use]
    pub fn outputs(&self, program: &Program) -> Vec<String> {
        self.report(program).outputs.clone()
    }

    /// Current hit/miss/entry counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| {
                    s.read()
                        .expect("oracle cache shard poisoned")
                        .values()
                        .map(Vec::len)
                        .sum::<usize>() as u64
                })
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::parser::parse_program;

    #[test]
    fn shard_count_is_power_of_two() {
        assert!(SHARD_COUNT.is_power_of_two());
    }

    #[test]
    fn report_matches_direct_oracle_run() {
        let p = parse_program("fn main() { print(7i32); }").unwrap();
        let cache = OracleCache::new();
        assert_eq!(*cache.report(&p), run_program(&p));
    }

    #[test]
    fn second_lookup_is_a_hit_sharing_the_verdict() {
        let p = parse_program("fn main() { print(7i32); }").unwrap();
        let cache = OracleCache::new();
        let first = cache.report(&p);
        let second = cache.report(&p);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn global_cache_is_one_instance() {
        assert!(Arc::ptr_eq(&OracleCache::global(), &OracleCache::global()));
    }
}
