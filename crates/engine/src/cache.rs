//! The sharded, content-addressed oracle cache and the [`CachedOracle`]
//! that plugs it into the repair stack's [`Oracle`] seam.
//!
//! The oracle ([`rb_miri::run_program`]) is deterministic: a program's
//! verdict depends only on its AST. The cache therefore keys verdicts by
//! *hashed program structure* — not source text — so two jobs that reach
//! the same program through different whitespace, comments or printing
//! round-trips share one oracle execution. Entries live behind
//! [`RwLock`]-protected shards so concurrent workers contend only when
//! their keys land in the same shard; hit/miss counters are lock-free
//! atomics.
//!
//! A key collision (two structurally different programs hashing alike) is
//! handled, not assumed away: each bucket stores the full program next to
//! its verdict and a hit requires structural equality, so a collision
//! degrades to an extra oracle run, never to a wrong verdict.
//!
//! ## Memory ceiling
//!
//! An unbounded verdict cache grows with every structurally distinct
//! program the search ever touches. [`OracleCache::bounded`] caps the
//! entry count and evicts with a shard-local **clock** (second-chance)
//! policy: every hit sets an entry's referenced bit; when a shard
//! overflows, the clock hand sweeps its entries in insertion order,
//! clearing referenced bits and evicting the first entry found cold.
//! Eviction changes *when* the oracle re-executes, never *what* it
//! reports, so bounded caches preserve the same bit-identical results as
//! unbounded ones.

use rb_lang::Program;
use rb_miri::{run_program, MiriReport, Oracle};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of independent shards. A power of two so the shard index is a
/// cheap mask of the content key.
const SHARD_COUNT: usize = 16;

/// The content key of a program: a structural hash over its AST.
///
/// Programs that print and re-parse to the same structure map to the same
/// key; programs that differ in any statement, type or literal map to
/// different keys (modulo 64-bit collisions, which the cache verifies
/// against).
#[must_use]
pub fn program_key(program: &Program) -> u64 {
    let mut hasher = DefaultHasher::new();
    program.hash(&mut hasher);
    hasher.finish()
}

/// One cached verdict: the program is stored alongside the report so hits
/// are confirmed by structural equality (collision guard).
struct CacheEntry {
    /// Shard-unique id linking the entry to its clock-queue slot.
    id: u64,
    program: Program,
    report: Arc<MiriReport>,
    /// Second-chance bit: set on every hit, cleared by the clock hand.
    referenced: AtomicBool,
}

/// Mutable interior of one shard: the verdict map plus the clock queue
/// driving eviction (entries in insertion order, identified by `(key,
/// id)`; the queue and map always hold exactly the same entries).
#[derive(Default)]
struct ShardState {
    map: HashMap<u64, Vec<CacheEntry>>,
    clock: VecDeque<(u64, u64)>,
    next_id: u64,
}

type Shard = RwLock<ShardState>;

/// Point-in-time counters of a cache (see [`OracleCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to execute the oracle.
    pub misses: u64,
    /// Distinct programs stored.
    pub entries: u64,
    /// Entries displaced by the clock eviction policy.
    pub evictions: u64,
    /// Entry ceiling (0 = unbounded).
    pub capacity: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded `hash(Program) → MiriReport` map shared across workers,
/// optionally bounded by an entry ceiling with clock eviction.
pub struct OracleCache {
    shards: Vec<Shard>,
    /// Per-shard entry ceiling (`None` = unbounded).
    shard_capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for OracleCache {
    fn default() -> OracleCache {
        OracleCache::new()
    }
}

impl OracleCache {
    /// Creates an empty, unbounded cache.
    #[must_use]
    pub fn new() -> OracleCache {
        OracleCache::with_shard_capacity(None)
    }

    /// Creates an empty cache holding at most `max_entries` verdicts,
    /// evicting with the shard-local clock policy once full.
    ///
    /// The ceiling is distributed evenly over the shards and rounded up,
    /// so the effective capacity (reported by [`CacheStats::capacity`])
    /// is `max_entries` rounded up to a multiple of the shard count, with
    /// a floor of one entry per shard — i.e. the smallest enforceable
    /// ceiling is `SHARD_COUNT` (16) entries, since shards evict
    /// independently and each must be able to hold the entry it is
    /// currently publishing.
    #[must_use]
    pub fn bounded(max_entries: usize) -> OracleCache {
        OracleCache::with_shard_capacity(Some(max_entries.div_ceil(SHARD_COUNT).max(1)))
    }

    fn with_shard_capacity(shard_capacity: Option<usize>) -> OracleCache {
        OracleCache {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide cache shared by every engine-backed corpus run
    /// (the experiment harness re-generates identical gold programs many
    /// times over; this is where that redundancy dies).
    #[must_use]
    pub fn global() -> Arc<OracleCache> {
        static GLOBAL: OnceLock<Arc<OracleCache>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(OracleCache::new())))
    }

    /// The configured entry ceiling (0 = unbounded). Saturates rather
    /// than overflowing for absurd per-shard caps (`bounded(usize::MAX)`).
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.shard_capacity.map_or(0, |per_shard| {
            (per_shard as u64).saturating_mul(SHARD_COUNT as u64)
        })
    }

    fn shard(&self, key: u64) -> &Shard {
        &self.shards[(key as usize) & (SHARD_COUNT - 1)]
    }

    /// The oracle verdict for `program` plus whether it was served from
    /// the cache, so callers can attribute the hit/miss to their own
    /// accounting (the engine's per-batch telemetry needs this — the
    /// cache-wide counters are shared by every concurrent batch).
    pub fn lookup(&self, program: &Program) -> (Arc<MiriReport>, bool) {
        let key = program_key(program);
        let shard = self.shard(key);
        {
            let read = shard.read().expect("oracle cache shard poisoned");
            if let Some(entries) = read.map.get(&key) {
                if let Some(e) = entries.iter().find(|e| &e.program == program) {
                    e.referenced.store(true, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (Arc::clone(&e.report), true);
                }
            }
        }
        // Miss: run the oracle outside any lock, then publish.
        let report = Arc::new(run_program(program));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut write = shard.write().expect("oracle cache shard poisoned");
        if let Some(e) = write
            .map
            .get(&key)
            .and_then(|entries| entries.iter().find(|e| &e.program == program))
        {
            // A racing worker published the same program first; keep one
            // copy (the verdicts are identical — the oracle is pure).
            return (Arc::clone(&e.report), false);
        }
        let id = write.next_id;
        write.next_id += 1;
        write.map.entry(key).or_default().push(CacheEntry {
            id,
            program: program.clone(),
            report: Arc::clone(&report),
            referenced: AtomicBool::new(false),
        });
        write.clock.push_back((key, id));
        if let Some(cap) = self.shard_capacity {
            self.evict_overflow(&mut write, cap);
        }
        (report, false)
    }

    /// Sweeps the clock hand until the shard is back at its capacity:
    /// referenced entries get a second chance (bit cleared, requeued),
    /// the first cold entry found is evicted.
    fn evict_overflow(&self, shard: &mut ShardState, cap: usize) {
        while shard.clock.len() > cap {
            let Some((key, id)) = shard.clock.pop_front() else {
                break;
            };
            let Some(bucket) = shard.map.get_mut(&key) else {
                continue; // unreachable: queue and map are kept in sync
            };
            let Some(pos) = bucket.iter().position(|e| e.id == id) else {
                continue;
            };
            if bucket[pos].referenced.swap(false, Ordering::Relaxed) {
                shard.clock.push_back((key, id));
                continue;
            }
            bucket.remove(pos);
            if bucket.is_empty() {
                shard.map.remove(&key);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The oracle verdict for `program`, executing the oracle only on the
    /// first structurally distinct sighting (or again after eviction).
    pub fn report(&self, program: &Program) -> Arc<MiriReport> {
        self.lookup(program).0
    }

    /// The observable outputs of `program` under the oracle (the gold
    /// reference a repair must reproduce), cached like [`report`].
    ///
    /// [`report`]: OracleCache::report
    #[must_use]
    pub fn outputs(&self, program: &Program) -> Vec<String> {
        self.report(program).outputs.clone()
    }

    /// Current hit/miss/entry/eviction counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| {
                    s.read()
                        .expect("oracle cache shard poisoned")
                        .map
                        .values()
                        .map(Vec::len)
                        .sum::<usize>() as u64
                })
                .sum(),
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.capacity(),
        }
    }
}

/// The [`Oracle`] implementation over an [`OracleCache`]: this is what the
/// batch engine injects into every system it builds, so the slow-thinking
/// executor's inner verifications, rollback re-verification, baselines and
/// gold-reference runs all share one process-wide verdict store.
pub struct CachedOracle {
    cache: Arc<OracleCache>,
}

impl CachedOracle {
    /// An oracle over an existing (possibly shared) cache.
    #[must_use]
    pub fn new(cache: Arc<OracleCache>) -> CachedOracle {
        CachedOracle { cache }
    }

    /// An oracle over the process-wide cache ([`OracleCache::global`]).
    #[must_use]
    pub fn global() -> CachedOracle {
        CachedOracle::new(OracleCache::global())
    }

    /// The backing cache.
    #[must_use]
    pub fn cache(&self) -> &Arc<OracleCache> {
        &self.cache
    }
}

impl Oracle for CachedOracle {
    fn judge(&self, program: &Program) -> Arc<MiriReport> {
        self.cache.report(program)
    }

    fn judge_counted(&self, program: &Program) -> (Arc<MiriReport>, bool) {
        self.cache.lookup(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::parser::parse_program;

    #[test]
    fn shard_count_is_power_of_two() {
        assert!(SHARD_COUNT.is_power_of_two());
    }

    #[test]
    fn report_matches_direct_oracle_run() {
        let p = parse_program("fn main() { print(7i32); }").unwrap();
        let cache = OracleCache::new();
        assert_eq!(*cache.report(&p), run_program(&p));
    }

    #[test]
    fn second_lookup_is_a_hit_sharing_the_verdict() {
        let p = parse_program("fn main() { print(7i32); }").unwrap();
        let cache = OracleCache::new();
        let first = cache.report(&p);
        let second = cache.report(&p);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!((stats.evictions, stats.capacity), (0, 0));
    }

    #[test]
    fn global_cache_is_one_instance() {
        assert!(Arc::ptr_eq(&OracleCache::global(), &OracleCache::global()));
    }

    #[test]
    fn cached_oracle_serves_through_the_trait() {
        let p = parse_program("fn main() { print(9i32); }").unwrap();
        let oracle = CachedOracle::new(Arc::new(OracleCache::new()));
        let (first, hit1) = oracle.judge_counted(&p);
        let (second, hit2) = oracle.judge_counted(&p);
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*oracle.judge(&p), run_program(&p));
    }

    fn distinct_programs(n: usize) -> Vec<Program> {
        (0..n)
            .map(|i| parse_program(&format!("fn main() {{ print({i}); }}")).unwrap())
            .collect()
    }

    #[test]
    fn capacity_rounds_up_and_never_overflows() {
        // Small caps round up to one entry per shard; huge caps saturate
        // instead of wrapping.
        assert_eq!(OracleCache::bounded(1).capacity(), SHARD_COUNT as u64);
        assert_eq!(OracleCache::bounded(17).capacity(), 32);
        assert_eq!(OracleCache::bounded(usize::MAX).capacity(), u64::MAX);
        assert_eq!(OracleCache::new().capacity(), 0);
    }

    #[test]
    fn bounded_cache_never_exceeds_capacity() {
        let cache = OracleCache::bounded(32);
        assert_eq!(cache.capacity(), 32);
        for p in distinct_programs(200) {
            cache.report(&p);
        }
        let stats = cache.stats();
        assert!(
            stats.entries <= stats.capacity,
            "{} entries > {} capacity",
            stats.entries,
            stats.capacity
        );
        assert!(stats.evictions > 0, "overflow without evictions");
        assert_eq!(stats.entries + stats.evictions, stats.misses);
    }

    #[test]
    fn eviction_preserves_verdicts() {
        // A tiny cache thrashes constantly; every verdict must still
        // match a direct oracle run bit for bit.
        let cache = OracleCache::bounded(4);
        let programs = distinct_programs(40);
        for p in &programs {
            cache.report(p);
        }
        for p in &programs {
            assert_eq!(*cache.report(p), run_program(p));
        }
    }

    #[test]
    fn clock_gives_hot_entries_a_second_chance() {
        // One entry per shard (the capacity floor), so every insertion
        // into the hot entry's shard forces an eviction sweep there. The
        // hot entry is hit once per round, which re-arms its referenced
        // bit, so each sweep gives it a second chance and evicts the cold
        // newcomer instead.
        let cache = OracleCache::bounded(16);
        let hot = parse_program("fn main() { print(7777i32); }").unwrap();
        cache.report(&hot); // miss: inserted, bit clear
        cache.report(&hot); // hit: referenced bit set before any contention
        let rounds = 120;
        for p in distinct_programs(rounds) {
            cache.report(&p);
            cache.report(&hot);
        }
        let stats = cache.stats();
        // Every miss is accounted for by the cold programs plus the hot
        // entry's single initial load: it was never evicted.
        assert_eq!(stats.misses, 1 + rounds as u64);
        assert_eq!(stats.hits, 1 + rounds as u64);
    }
}
