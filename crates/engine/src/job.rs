//! Job identity: what one unit of engine work is and how its RNG seed is
//! derived.
//!
//! A job's seed is a pure function of the batch's base seed and the case
//! id — never of the worker that happens to pick it up or the order it is
//! dequeued in. Combined with per-job system instances, this makes the
//! merged result stream byte-identical for any worker count.

use crate::system::{CaseResult, SystemSpec};
use rb_dataset::UbCase;
use rb_miri::OracleUse;
use rustbrain::KbDelta;

/// Derives the per-job RNG seed from the batch seed and the case id
/// (FNV-1a over the id bytes, folded with the base seed).
#[must_use]
pub fn derive_case_seed(base_seed: u64, case_id: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ base_seed.wrapping_mul(FNV_PRIME);
    for b in case_id.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finalizer) so near-identical ids do not
    // produce correlated seeds.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// One unit of engine work: repair one case with a freshly built system.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Position in the submitted batch (merge key).
    pub index: usize,
    /// The corpus case to repair.
    pub case: UbCase,
    /// Recipe for the system instance that repairs it.
    pub system: SystemSpec,
    /// Derived RNG seed (see [`derive_case_seed`]).
    pub seed: u64,
}

impl JobSpec {
    /// Builds the job for `case` at `index` of a batch, deriving its seed
    /// from `base_seed` and the case id.
    #[must_use]
    pub fn new(index: usize, case: UbCase, system: SystemSpec, base_seed: u64) -> JobSpec {
        let seed = derive_case_seed(base_seed, &case.id);
        JobSpec {
            index,
            case,
            system,
            seed,
        }
    }
}

/// One executed job, as streamed back from a worker.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Position in the submitted batch (restored during the merge).
    pub index: usize,
    /// Worker that executed the job (telemetry only).
    pub worker: usize,
    /// Real wall-clock time the job took on its worker, in milliseconds
    /// (telemetry only — distinct from the simulated `overhead_ms`).
    pub wall_ms: f64,
    /// Whether the job's gold-reference oracle lookup was served from the
    /// cache (per-job attribution for the batch telemetry).
    pub cache_hit: bool,
    /// Executed-vs-cached split of *every* oracle judgement the job made
    /// (gold reference plus all repair-internal verifications).
    pub oracle_use: OracleUse,
    /// The knowledge-base inserts the job recorded on top of the shared
    /// snapshot (`None` for systems without a knowledge base). Merged
    /// back in submission order after the batch.
    pub kb_delta: Option<KbDelta>,
    /// The system-agnostic repair result.
    pub result: CaseResult,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_id_sensitive() {
        let a = derive_case_seed(42, "alloc/double_free/0");
        assert_eq!(a, derive_case_seed(42, "alloc/double_free/0"));
        assert_ne!(a, derive_case_seed(42, "alloc/double_free/1"));
        assert_ne!(a, derive_case_seed(43, "alloc/double_free/0"));
    }

    #[test]
    fn near_identical_ids_decorrelate() {
        let mut seeds: Vec<u64> = (0..64)
            .map(|i| derive_case_seed(7, &format!("panic/div/{i}")))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64, "seed collisions across sibling cases");
    }
}
