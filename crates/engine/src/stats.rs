//! Engine telemetry: throughput, per-worker utilization, cache
//! effectiveness, the executed-vs-cached oracle split and knowledge-base
//! merge accounting, serializable to JSON.
//!
//! The vendored `serde` is a marker stub (see `vendor/README.md`), so the
//! JSON encoding here is hand-rolled; [`EngineStats::to_json`] emits
//! strictly valid JSON (finite numbers only, no trailing commas).

use crate::cache::CacheStats;
use crate::sched::SchedStats;
use crate::system::CaseResult;

/// Knowledge-base accounting of one batch: how the shared snapshot grew
/// when the per-job deltas were merged back in submission order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KbMergeStats {
    /// Entries in the read-only snapshot every job started from.
    pub seeded_entries: usize,
    /// Entries merged back from per-job deltas after the batch.
    pub merged_inserts: usize,
    /// Jobs that contributed at least one insert.
    pub contributing_jobs: usize,
    /// Entries the merge policy absorbed (exact duplicates folded into
    /// weights, conflicting rules dropped, near-duplicates coalesced):
    /// `seeded_entries + merged_inserts - final_entries`. Zero under the
    /// append-only policy.
    pub coalesced: usize,
    /// Entries in the merged base handed back in the batch outcome.
    pub final_entries: usize,
    /// Store segments rewritten by `--kb-out` (a single-file store counts
    /// as one; a sharded store rewrites only its dirty shards). Zero when
    /// no store was written.
    pub shards_written: usize,
    /// Store segments whose content was unchanged and were skipped by the
    /// sharded save (always zero for single-file stores).
    pub shards_skipped: usize,
}

/// Aggregate telemetry of one engine batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Jobs executed.
    pub cases: usize,
    /// Real wall-clock duration of the batch in milliseconds.
    pub wall_ms: f64,
    /// Throughput: cases per wall-clock second.
    pub cases_per_sec: f64,
    /// Fraction of the batch wall-clock each worker spent executing jobs
    /// (one entry per worker, in worker order).
    pub worker_utilization: Vec<f64>,
    /// Jobs executed by each worker, in worker order.
    pub worker_cases: Vec<usize>,
    /// Scheduler-imbalance summary: the busiest worker's case share
    /// divided by the idlest worker's (`max/min` over `worker_cases`).
    /// `1.0` is a perfectly even split. `None` — serialized as JSON
    /// `null` — when a worker got zero jobs while another got some (the
    /// ratio would be ∞) or when the batch was empty; collapsing ∞ to a
    /// number would hide exactly the starvation the metric exists to
    /// flag.
    pub imbalance: Option<f64>,
    /// Total simulated repair time accumulated by the jobs (the paper's
    /// overhead metric — unrelated to real wall-clock).
    pub simulated_overhead_ms: f64,
    /// Simulated milliseconds the jobs spent in knowledge-base retrieval
    /// (a subset of `simulated_overhead_ms`; the paper's knowledge
    /// overhead, now derived from indexed bucket scans).
    pub kb_query_ms: f64,
    /// Oracle judgements across the whole batch (gold references plus
    /// every repair-internal verification) that executed the interpreter.
    pub oracle_executed: u64,
    /// Oracle judgements served from the verdict cache.
    pub oracle_cached: u64,
    /// Oracle judgements the static preflight (`rb_lint`) resolved without
    /// running or caching the interpreter at all.
    pub oracle_prevetoed: u64,
    /// Knowledge-base snapshot/delta merge accounting.
    pub kb: KbMergeStats,
    /// Oracle-cache effect of the batch: `hits`/`misses` count exactly
    /// this batch's *gold-reference* lookups (attributed per job, so
    /// concurrent batches on a shared cache cannot pollute each other),
    /// while `entries`/`evictions`/`capacity` are the cache's absolute
    /// state when the batch finished.
    pub cache: CacheStats,
    /// Dispatch telemetry: the policy the batch ran under, jobs stolen
    /// across workers, and the deepest queue at seeding time.
    pub sched: SchedStats,
}

/// Formats a float as a finite JSON number (non-finite values collapse to
/// 0, which cannot occur in practice but keeps the output parseable).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "0".to_owned()
    }
}

fn json_array<T, F: Fn(&T) -> String>(items: &[T], f: F) -> String {
    let body: Vec<String> = items.iter().map(f).collect();
    format!("[{}]", body.join(","))
}

/// Escapes a string for embedding in a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl EngineStats {
    /// The scheduler-imbalance ratio for a per-worker case distribution:
    /// `max/min`, `Some(1.0)` for a single worker or an even split, and
    /// `None` when the ratio is undefined or infinite (an empty batch,
    /// or a worker starved to zero jobs while others ran).
    #[must_use]
    pub fn imbalance_of(worker_cases: &[usize]) -> Option<f64> {
        let max = worker_cases.iter().copied().max()?;
        let min = worker_cases.iter().copied().min()?;
        if min == 0 {
            // max == 0 means an empty batch (no share to compare);
            // max > 0 means a starved worker (an infinite ratio).
            return None;
        }
        Some(max as f64 / min as f64)
    }

    /// Per-worker utilization for a busy-time distribution: each
    /// worker's busy milliseconds over the batch wall-clock, clamped to
    /// `[0, 1]`. Degenerate batches (zero or negative wall, non-finite
    /// busy times) report 0.0 rather than leaking `NaN`/`inf` into
    /// BENCH_engine.json — the same infinity-safety contract
    /// [`EngineStats::imbalance_of`] keeps.
    #[must_use]
    pub fn utilization_of(busy_ms: &[f64], wall_ms: f64) -> Vec<f64> {
        busy_ms
            .iter()
            .map(|b| {
                if wall_ms > 0.0 {
                    let ratio = b / wall_ms;
                    if ratio.is_finite() {
                        ratio.clamp(0.0, 1.0)
                    } else {
                        0.0
                    }
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Serializes the telemetry to a single-line JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"workers\":{},\"cases\":{},\"wall_ms\":{},",
                "\"cases_per_sec\":{},\"worker_utilization\":{},",
                "\"worker_cases\":{},\"imbalance\":{},",
                "\"simulated_overhead_ms\":{},",
                "\"kb_query_ms\":{},",
                "\"oracle\":{{\"executed\":{},\"cached\":{},\"prevetoed\":{}}},",
                "\"kb\":{{\"seeded\":{},\"merged_inserts\":{},",
                "\"contributing_jobs\":{},\"coalesced\":{},\"final_entries\":{},",
                "\"shards_written\":{},\"shards_skipped\":{}}},",
                "\"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},",
                "\"evictions\":{},\"capacity\":{},\"hit_rate\":{}}},",
                "\"sched\":{{\"policy\":{},\"steals\":{},",
                "\"max_queue_depth\":{}}}}}"
            ),
            self.workers,
            self.cases,
            json_num(self.wall_ms),
            json_num(self.cases_per_sec),
            json_array(&self.worker_utilization, |u| json_num(*u)),
            json_array(&self.worker_cases, |c| c.to_string()),
            self.imbalance.map_or_else(|| "null".to_owned(), json_num),
            json_num(self.simulated_overhead_ms),
            json_num(self.kb_query_ms),
            self.oracle_executed,
            self.oracle_cached,
            self.oracle_prevetoed,
            self.kb.seeded_entries,
            self.kb.merged_inserts,
            self.kb.contributing_jobs,
            self.kb.coalesced,
            self.kb.final_entries,
            self.kb.shards_written,
            self.kb.shards_skipped,
            self.cache.hits,
            self.cache.misses,
            self.cache.entries,
            self.cache.evictions,
            self.cache.capacity,
            json_num(self.cache.hit_rate()),
            json_str(&self.sched.policy),
            self.sched.steals,
            self.sched.max_queue_depth,
        )
    }
}

/// Serializes a result stream to JSON carrying **only the deterministic
/// repair fields** — no telemetry, no wall-clock, no cache attribution —
/// so two runs that repaired identically produce byte-identical files.
/// This is the artifact CI diffs between cache-enabled and cache-disabled
/// batch runs to pin the equivalence.
#[must_use]
pub fn results_to_json(results: &[CaseResult]) -> String {
    let rows = json_array(results, |r| {
        format!(
            concat!(
                "{{\"case_id\":{},\"class\":{},\"passed\":{},",
                "\"acceptable\":{},\"overhead_ms\":{},",
                "\"kb_queries\":{},\"kb_query_ms\":{}}}"
            ),
            json_str(&r.case_id),
            json_str(r.class.label()),
            r.passed,
            r.acceptable,
            json_num(r.overhead_ms),
            r.kb_queries,
            json_num(r.kb_query_ms),
        )
    });
    format!("{{\"results\":{rows}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let stats = EngineStats {
            workers: 2,
            cases: 3,
            wall_ms: 12.5,
            cases_per_sec: 240.0,
            worker_utilization: vec![0.9, 0.8],
            worker_cases: vec![2, 1],
            imbalance: EngineStats::imbalance_of(&[2, 1]),
            simulated_overhead_ms: 99.0,
            kb_query_ms: 18.5,
            oracle_executed: 7,
            oracle_cached: 21,
            oracle_prevetoed: 4,
            kb: KbMergeStats {
                seeded_entries: 1,
                merged_inserts: 3,
                contributing_jobs: 2,
                coalesced: 1,
                final_entries: 3,
                shards_written: 2,
                shards_skipped: 1,
            },
            cache: CacheStats {
                hits: 1,
                misses: 3,
                entries: 3,
                evictions: 4,
                capacity: 64,
            },
            sched: SchedStats {
                policy: "stealing".to_owned(),
                steals: 5,
                max_queue_depth: 2,
            },
        };
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"workers\":2"));
        assert!(
            json.contains("\"sched\":{\"policy\":\"stealing\",\"steals\":5,\"max_queue_depth\":2}")
        );
        assert!(json.contains("\"worker_utilization\":[0.9000,0.8000]"));
        assert!(json.contains("\"imbalance\":2.0000"));
        assert!(json.contains("\"oracle\":{\"executed\":7,\"cached\":21,\"prevetoed\":4}"));
        assert!(json.contains("\"merged_inserts\":3"));
        assert!(json.contains("\"coalesced\":1"));
        assert!(json.contains("\"shards_written\":2"));
        assert!(json.contains("\"shards_skipped\":1"));
        assert!(json.contains("\"kb_query_ms\":18.5000"));
        assert!(json.contains("\"evictions\":4"));
        assert!(json.contains("\"capacity\":64"));
        assert!(json.contains("\"hit_rate\":0.2500"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn non_finite_numbers_never_leak() {
        assert_eq!(json_num(f64::NAN), "0");
        assert_eq!(json_num(f64::INFINITY), "0");
        assert_eq!(json_num(1.0 / 3.0), "0.3333");
    }

    #[test]
    fn imbalance_is_infinity_safe() {
        // Even split and single worker are both 1.0.
        assert_eq!(EngineStats::imbalance_of(&[3, 3]), Some(1.0));
        assert_eq!(EngineStats::imbalance_of(&[7]), Some(1.0));
        // The committed bench's distribution has a defined ratio.
        assert_eq!(EngineStats::imbalance_of(&[4, 1, 16, 21]), Some(21.0));
        // A starved worker would be an infinite ratio: report None, and
        // serialize it as null rather than a misleading finite number.
        assert_eq!(EngineStats::imbalance_of(&[0, 5]), None);
        assert_eq!(EngineStats::imbalance_of(&[0, 0]), None);
        assert_eq!(EngineStats::imbalance_of(&[]), None);
        let stats = EngineStats {
            workers: 2,
            worker_cases: vec![0, 5],
            imbalance: EngineStats::imbalance_of(&[0, 5]),
            ..EngineStats::default()
        };
        assert!(
            stats.to_json().contains("\"imbalance\":null"),
            "{}",
            stats.to_json()
        );
    }

    #[test]
    fn utilization_is_clamped_on_degenerate_batches() {
        // The normal case divides and clamps per worker.
        let u = EngineStats::utilization_of(&[5.0, 20.0], 10.0);
        assert_eq!(u, vec![0.5, 1.0]);
        // Zero-wall and empty batches must not emit NaN/inf into
        // BENCH_engine.json.
        assert_eq!(
            EngineStats::utilization_of(&[5.0, 0.0], 0.0),
            vec![0.0, 0.0]
        );
        assert_eq!(EngineStats::utilization_of(&[], 12.0), Vec::<f64>::new());
        // Pathological inputs (non-finite busy or wall) collapse to 0.
        assert_eq!(
            EngineStats::utilization_of(&[f64::NAN, f64::INFINITY], 10.0),
            vec![0.0, 0.0]
        );
        assert_eq!(EngineStats::utilization_of(&[1.0], f64::NAN), vec![0.0]);
        let stats = EngineStats {
            workers: 1,
            worker_utilization: EngineStats::utilization_of(&[3.0], 0.0),
            ..EngineStats::default()
        };
        assert!(stats.to_json().contains("\"worker_utilization\":[0.0000]"));
    }

    #[test]
    fn results_json_is_telemetry_free() {
        let results = vec![CaseResult {
            case_id: "alloc/double_free/0".into(),
            class: rb_miri::UbClass::Alloc,
            passed: true,
            acceptable: false,
            overhead_ms: 1234.5,
            kb_queries: 2,
            kb_query_ms: 18120.0,
        }];
        let json = results_to_json(&results);
        assert!(json.contains("\"case_id\":\"alloc/double_free/0\""));
        assert!(json.contains("\"overhead_ms\":1234.5000"));
        assert!(json.contains("\"kb_queries\":2"));
        // Deterministic fields only: no wall-clock, no cache, no workers.
        for banned in ["wall", "cache", "worker", "hit"] {
            assert!(!json.contains(banned), "telemetry `{banned}` leaked");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("n\nl"), "\"n\\u000al\"");
    }
}
