//! Engine telemetry: throughput, per-worker utilization and cache
//! effectiveness, serializable to JSON.
//!
//! The vendored `serde` is a marker stub (see `vendor/README.md`), so the
//! JSON encoding here is hand-rolled; [`EngineStats::to_json`] emits
//! strictly valid JSON (finite numbers only, no trailing commas).

use crate::cache::CacheStats;

/// Aggregate telemetry of one engine batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Jobs executed.
    pub cases: usize,
    /// Real wall-clock duration of the batch in milliseconds.
    pub wall_ms: f64,
    /// Throughput: cases per wall-clock second.
    pub cases_per_sec: f64,
    /// Fraction of the batch wall-clock each worker spent executing jobs
    /// (one entry per worker, in worker order).
    pub worker_utilization: Vec<f64>,
    /// Jobs executed by each worker, in worker order.
    pub worker_cases: Vec<usize>,
    /// Total simulated repair time accumulated by the jobs (the paper's
    /// overhead metric — unrelated to real wall-clock).
    pub simulated_overhead_ms: f64,
    /// Oracle-cache effect of the batch: `hits`/`misses` count exactly
    /// this batch's lookups (attributed per job, so concurrent batches on
    /// a shared cache cannot pollute each other), while `entries` is the
    /// cache's absolute size when the batch finished.
    pub cache: CacheStats,
}

/// Formats a float as a finite JSON number (non-finite values collapse to
/// 0, which cannot occur in practice but keeps the output parseable).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "0".to_owned()
    }
}

fn json_array<T, F: Fn(&T) -> String>(items: &[T], f: F) -> String {
    let body: Vec<String> = items.iter().map(f).collect();
    format!("[{}]", body.join(","))
}

impl EngineStats {
    /// Serializes the telemetry to a single-line JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"workers\":{},\"cases\":{},\"wall_ms\":{},",
                "\"cases_per_sec\":{},\"worker_utilization\":{},",
                "\"worker_cases\":{},\"simulated_overhead_ms\":{},",
                "\"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},",
                "\"hit_rate\":{}}}}}"
            ),
            self.workers,
            self.cases,
            json_num(self.wall_ms),
            json_num(self.cases_per_sec),
            json_array(&self.worker_utilization, |u| json_num(*u)),
            json_array(&self.worker_cases, |c| c.to_string()),
            json_num(self.simulated_overhead_ms),
            self.cache.hits,
            self.cache.misses,
            self.cache.entries,
            json_num(self.cache.hit_rate()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let stats = EngineStats {
            workers: 2,
            cases: 3,
            wall_ms: 12.5,
            cases_per_sec: 240.0,
            worker_utilization: vec![0.9, 0.8],
            worker_cases: vec![2, 1],
            simulated_overhead_ms: 99.0,
            cache: CacheStats {
                hits: 1,
                misses: 3,
                entries: 3,
            },
        };
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"workers\":2"));
        assert!(json.contains("\"worker_utilization\":[0.9000,0.8000]"));
        assert!(json.contains("\"hit_rate\":0.2500"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn non_finite_numbers_never_leak() {
        assert_eq!(json_num(f64::NAN), "0");
        assert_eq!(json_num(f64::INFINITY), "0");
        assert_eq!(json_num(1.0 / 3.0), "0.3333");
    }
}
