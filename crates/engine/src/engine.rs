//! The batch executor: a fixed-size worker pool over `std::thread` and
//! `mpsc` channels, injecting one shared [`CachedOracle`] into every
//! system it builds, recovering cross-case learning through shared
//! knowledge-base snapshots, and merging results deterministically.
//!
//! Determinism contract: the merged [`CaseResult`] stream of
//! [`Engine::run_batch`] is byte-identical for every worker count,
//! because (a) each job builds a *fresh* system seeded only from the
//! batch seed and the case id ([`crate::job::derive_case_seed`]), (b) the
//! oracle cache can change *when* a verdict is computed but never *what*
//! it is (the oracle is pure), (c) every job starts from the same
//! read-only knowledge-base snapshot (jobs never see each other's
//! learning mid-batch), and (d) results — and the jobs' knowledge deltas
//! — are merged back into submission order. [`run_serial_reference`] is
//! the plain-loop, cache-free reference implementation the property tests
//! compare against.

use crate::cache::{CachedOracle, OracleCache};
use crate::job::{JobResult, JobSpec};
use crate::sched::{CostModel, Dispatcher, SchedPolicy, SchedStats};
use crate::stats::{EngineStats, KbMergeStats};
use crate::system::{CaseResult, System, SystemSpec};
use rb_dataset::UbCase;
use rb_miri::{DirectOracle, Oracle, OracleUse};
use rustbrain::{KbDelta, KnowledgeBase, MergePolicy, StoreError};
use std::path::Path;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Outcome of one batch: the deterministic result stream plus telemetry.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Per-case results, in submission order (byte-identical for any
    /// worker count).
    pub results: Vec<CaseResult>,
    /// Per-job execution records (worker assignment, wall time), in
    /// submission order. Scheduling-dependent — telemetry only.
    pub jobs: Vec<JobResult>,
    /// The knowledge base after the batch: the snapshot the jobs started
    /// from plus every job's delta, merged in submission order (identical
    /// for any worker count). Feed it into the next batch to keep
    /// learning across sweeps.
    pub knowledge: KnowledgeBase,
    /// Batch telemetry.
    pub stats: EngineStats,
}

/// The parallel batch-repair engine.
pub struct Engine {
    workers: usize,
    cache: Arc<OracleCache>,
    /// When false, systems judge through [`DirectOracle`] and no verdict
    /// is ever cached (the `--no-cache` equivalence baseline).
    use_cache: bool,
    /// How per-job knowledge deltas fold back into the shared base after
    /// a batch (defaults to the bounded-growth [`MergePolicy::default`]).
    merge_policy: MergePolicy,
    /// When set, every worker thread installs this tracer for the whole
    /// batch, so job spans (and the repair/oracle/KB spans beneath them)
    /// from all workers interleave into one trace stream. Purely
    /// observational: results are byte-identical with or without it.
    tracer: Option<rb_obs::Tracer>,
    /// How a batch's jobs reach the workers (see [`crate::sched`]).
    /// Scheduling only reorders execution — the determinism contract
    /// pins results for every policy.
    policy: SchedPolicy,
    /// Predicts per-class job cost for the cost-aware policies.
    cost_model: CostModel,
}

impl Engine {
    /// An engine with `workers` threads (clamped to at least 1) and a
    /// private oracle cache.
    #[must_use]
    pub fn new(workers: usize) -> Engine {
        Engine::with_cache(workers, Arc::new(OracleCache::new()))
    }

    /// An engine sharing an existing oracle cache (e.g. across sweeps, so
    /// a second sweep over the same corpus never re-runs the oracle).
    #[must_use]
    pub fn with_cache(workers: usize, cache: Arc<OracleCache>) -> Engine {
        Engine {
            workers: workers.max(1),
            cache,
            use_cache: true,
            merge_policy: MergePolicy::default(),
            tracer: None,
            policy: SchedPolicy::default(),
            cost_model: CostModel::defaults(),
        }
    }

    /// An engine on the process-wide cache ([`OracleCache::global`]).
    #[must_use]
    pub fn with_global_cache(workers: usize) -> Engine {
        Engine::with_cache(workers, OracleCache::global())
    }

    /// An engine that bypasses verdict caching entirely: every judgement
    /// executes the interpreter through [`DirectOracle`]. Exists to pin
    /// the cached/uncached equivalence (CI diffs the two result streams).
    #[must_use]
    pub fn direct(workers: usize) -> Engine {
        Engine {
            workers: workers.max(1),
            cache: Arc::new(OracleCache::new()),
            use_cache: false,
            merge_policy: MergePolicy::default(),
            tracer: None,
            policy: SchedPolicy::default(),
            cost_model: CostModel::defaults(),
        }
    }

    /// Replaces the knowledge merge policy (builder-style). Pass
    /// [`MergePolicy::append_only`] to reproduce PR 3's unbounded-append
    /// behaviour.
    #[must_use]
    pub fn with_merge_policy(mut self, policy: MergePolicy) -> Engine {
        self.merge_policy = policy;
        self
    }

    /// The policy per-job knowledge deltas merge under after a batch.
    #[must_use]
    pub fn merge_policy(&self) -> &MergePolicy {
        &self.merge_policy
    }

    /// Installs `tracer` on every worker thread of subsequent batches
    /// (builder-style), so the full repair path emits spans into it.
    /// Tracing is off without this call.
    #[must_use]
    pub fn with_tracer(mut self, tracer: rb_obs::Tracer) -> Engine {
        self.tracer = Some(tracer);
        self
    }

    /// Replaces the scheduling policy (builder-style). The default is
    /// [`SchedPolicy::Stealing`]; [`SchedPolicy::Fifo`] reproduces the
    /// pre-scheduler shared-counter dispatch as a baseline.
    #[must_use]
    pub fn with_policy(mut self, policy: SchedPolicy) -> Engine {
        self.policy = policy;
        self
    }

    /// Replaces the cost model the cost-aware policies order by
    /// (builder-style) — e.g. one loaded from a persisted cost table.
    #[must_use]
    pub fn with_cost_model(mut self, model: CostModel) -> Engine {
        self.cost_model = model;
        self
    }

    /// The scheduling policy batches dispatch under.
    #[must_use]
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// The cost model the cost-aware policies order by.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Worker threads this engine schedules onto.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The oracle cache the engine's jobs share.
    #[must_use]
    pub fn cache(&self) -> &Arc<OracleCache> {
        &self.cache
    }

    /// The oracle this engine injects into every system it builds: a
    /// [`CachedOracle`] over the engine's shared cache, or a plain
    /// [`DirectOracle`] for a cache-bypassing engine. Public since PR 6
    /// so a resident daemon's single-repair path judges through the
    /// same verdict cache its batches warm.
    #[must_use]
    pub fn shared_oracle(&self) -> Arc<dyn Oracle> {
        if self.use_cache {
            Arc::new(CachedOracle::new(Arc::clone(&self.cache)))
        } else {
            Arc::new(DirectOracle)
        }
    }

    /// Executes one job: build the system at the job's derived seed with
    /// the engine's oracle and the shared knowledge snapshot, resolve the
    /// gold reference through the same oracle, repair, and collect the
    /// job's knowledge delta. The flag is whether the gold-reference
    /// lookup was a cache hit.
    fn execute(
        job: &JobSpec,
        oracle: &Arc<dyn Oracle>,
        snapshot: &KnowledgeBase,
    ) -> (CaseResult, OracleUse, bool, Option<KbDelta>) {
        let mut system = job
            .system
            .build_with(job.seed, Arc::clone(oracle), snapshot);
        // The gold-reference lookup goes through judge_counted directly
        // (no OracleUse to record into yet), so it needs its own
        // call-site span — the judge_recording seam never sees it.
        let (reference, gold_hit) = {
            let mut gold_span = rb_obs::span("oracle.gold");
            let (reference, gold_hit) = oracle.judge_counted(&job.case.gold);
            gold_span.tag("cached", if gold_hit { "cached" } else { "executed" });
            (reference, gold_hit)
        };
        let (result, mut oracle_use) =
            system.repair_case_instrumented(&job.case, &reference.outputs);
        oracle_use.record(gold_hit);
        let kb_delta = system.kb_delta(snapshot.len());
        (result, oracle_use, gold_hit, kb_delta)
    }

    /// Runs a prepared job list on the worker pool (every job starting
    /// from an empty knowledge base) and merges the results back into
    /// submission order.
    #[must_use]
    pub fn run_jobs(&self, jobs: &[JobSpec]) -> BatchOutcome {
        self.run_jobs_with_knowledge(jobs, &KnowledgeBase::new())
    }

    /// Runs a prepared job list on the worker pool, every job starting
    /// from the read-only `snapshot`, and merges results and knowledge
    /// deltas back into submission order.
    #[must_use]
    pub fn run_jobs_with_knowledge(
        &self,
        jobs: &[JobSpec],
        snapshot: &KnowledgeBase,
    ) -> BatchOutcome {
        let started = Instant::now();
        // Predicted per-job costs (submission order) drive the cost-
        // aware policies. Predictions only reorder execution: seeds
        // derive from case ids and merges restore submission order, so
        // a wrong prediction costs balance, never correctness.
        let cost_table = self.cost_model.effective();
        let costs: Vec<f64> = jobs
            .iter()
            .map(|j| {
                cost_table
                    .get(&j.case.class)
                    .copied()
                    .unwrap_or(crate::sched::DEFAULT_COST_MS)
            })
            .collect();
        let dispatcher = Dispatcher::build(self.policy, &costs, self.workers);
        let (tx, rx) = mpsc::channel::<JobResult>();
        let oracle = self.shared_oracle();

        let mut executed: Vec<JobResult> = Vec::with_capacity(jobs.len());
        std::thread::scope(|scope| {
            for worker in 0..self.workers {
                let tx = tx.clone();
                let dispatcher = &dispatcher;
                let oracle = &oracle;
                let tracer = self.tracer.clone();
                scope.spawn(move || {
                    // Install the batch tracer on this worker for its
                    // whole lifetime; every span the jobs open lands in
                    // the shared sink.
                    let _trace_scope = tracer.as_ref().map(rb_obs::trace::scope);
                    for assignment in dispatcher.lane(worker) {
                        let index = assignment.index;
                        let job = &jobs[index];
                        let job_started = Instant::now();
                        let mut job_span = rb_obs::span("engine.job");
                        job_span.tag("case", job.case.id.clone());
                        job_span.tag("worker", worker.to_string());
                        job_span.tag("stolen", assignment.stolen.to_string());
                        let (result, oracle_use, cache_hit, kb_delta) =
                            Engine::execute(job, oracle, snapshot);
                        let wall_s = job_started.elapsed().as_secs_f64();
                        job_span.add_sim_ms(result.overhead_ms);
                        job_span.tag("class", result.class.label());
                        job_span.tag("passed", result.passed.to_string());
                        drop(job_span);
                        let m = rb_obs::metrics();
                        m.counter_add("rustbrain_engine_jobs_total", None, 1);
                        m.observe(
                            "rustbrain_engine_job_wall_us",
                            Some(("class", result.class.label())),
                            wall_s * 1e6,
                            rb_obs::REAL_US_BUCKETS,
                        );
                        let sent = tx.send(JobResult {
                            index: job.index,
                            worker,
                            wall_ms: wall_s * 1e3,
                            cache_hit,
                            oracle_use,
                            kb_delta,
                            result,
                        });
                        if sent.is_err() {
                            break; // receiver gone: the batch was abandoned
                        }
                    }
                });
            }
            drop(tx); // workers hold the remaining senders
            executed.extend(rx.iter());
        });
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;

        // Deterministic merge: scheduling decided arrival order, the
        // submission index restores it.
        executed.sort_by_key(|j| j.index);
        let results: Vec<CaseResult> = executed.iter().map(|j| j.result.clone()).collect();

        // Cross-case learning, recovered: fold every job's inserts back
        // into the snapshot in ONE normalization pass under the engine's
        // merge policy. The policy reduces the entry *multiset*, so the
        // merged base is the same for any worker count and any delta
        // order — and, unlike PR 3's blind append, stays bounded (exact
        // duplicates become weights, near-duplicates coalesce).
        let mut knowledge = snapshot.clone();
        let deltas: Vec<&KbDelta> = executed
            .iter()
            .filter_map(|j| j.kb_delta.as_ref())
            .filter(|d| !d.is_empty())
            .collect();
        let contributing_jobs = deltas.len();
        let merged_inserts = if deltas.is_empty() {
            0
        } else {
            knowledge.merge_all(deltas, &self.merge_policy)
        };
        let kb = KbMergeStats {
            seeded_entries: snapshot.len(),
            merged_inserts,
            contributing_jobs,
            coalesced: (snapshot.len() + merged_inserts).saturating_sub(knowledge.len()),
            final_entries: knowledge.len(),
            // Filled in by run_batch_stored when a store is written.
            shards_written: 0,
            shards_skipped: 0,
        };

        let mut busy_ms = vec![0.0f64; self.workers];
        let mut worker_cases = vec![0usize; self.workers];
        let mut batch_use = OracleUse::default();
        for j in &executed {
            busy_ms[j.worker] += j.wall_ms;
            worker_cases[j.worker] += 1;
            batch_use.absorb(j.oracle_use);
        }
        // Per-job attribution, not a delta of the shared counters: other
        // batches may be running on the same cache concurrently, and
        // their lookups must not leak into this batch's telemetry.
        let hits = executed.iter().filter(|j| j.cache_hit).count() as u64;
        let cache_now = self.cache.stats();
        let cache = crate::cache::CacheStats {
            hits,
            misses: executed.len() as u64 - hits,
            entries: cache_now.entries,
            evictions: cache_now.evictions,
            capacity: cache_now.capacity,
        };
        let stats = EngineStats {
            workers: self.workers,
            cases: results.len(),
            wall_ms,
            cases_per_sec: if wall_ms > 0.0 {
                results.len() as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            worker_utilization: EngineStats::utilization_of(&busy_ms, wall_ms),
            imbalance: EngineStats::imbalance_of(&worker_cases),
            worker_cases,
            simulated_overhead_ms: results.iter().map(|r| r.overhead_ms).sum(),
            kb_query_ms: results.iter().map(|r| r.kb_query_ms).sum(),
            oracle_executed: batch_use.executed as u64,
            oracle_cached: batch_use.cached as u64,
            oracle_prevetoed: batch_use.prevetoed as u64,
            kb,
            cache,
            sched: SchedStats {
                policy: self.policy.label().to_owned(),
                steals: dispatcher.steals(),
                max_queue_depth: dispatcher.max_queue_depth(),
            },
        };
        // Batch-level gauges for the scheduler cost model: the latest
        // imbalance ratio and pool size (the per-class latency
        // histograms were filled at the repair call sites), plus the
        // dispatch telemetry the serve `metrics` verb exposes.
        let m = rb_obs::metrics();
        if let Some(ratio) = stats.imbalance {
            m.gauge_set("rustbrain_engine_imbalance", None, ratio);
        }
        m.gauge_set("rustbrain_engine_workers", None, self.workers as f64);
        m.counter_add("rustbrain_sched_steals_total", None, stats.sched.steals);
        m.gauge_set(
            "rustbrain_sched_queue_depth",
            None,
            stats.sched.max_queue_depth as f64,
        );
        BatchOutcome {
            results,
            jobs: executed,
            knowledge,
            stats,
        }
    }

    /// Sweeps a corpus: one job per case, seeds derived from case ids,
    /// fanned out across the pool, every job starting from an empty
    /// knowledge base.
    #[must_use]
    pub fn run_batch(&self, system: &SystemSpec, cases: &[UbCase], base_seed: u64) -> BatchOutcome {
        self.run_batch_learned(system, cases, base_seed, &KnowledgeBase::new())
    }

    /// Sweeps a corpus with cross-case learning: every job starts from
    /// the read-only pre-seeded `snapshot`, and the returned
    /// [`BatchOutcome::knowledge`] carries the deterministic merge of all
    /// per-job inserts — feed it into the next call to keep accumulating,
    /// as the paper's sequential self-learning runs do.
    #[must_use]
    pub fn run_batch_learned(
        &self,
        system: &SystemSpec,
        cases: &[UbCase],
        base_seed: u64,
        snapshot: &KnowledgeBase,
    ) -> BatchOutcome {
        let jobs: Vec<JobSpec> = cases
            .iter()
            .enumerate()
            .map(|(i, case)| JobSpec::new(i, case.clone(), system.clone(), base_seed))
            .collect();
        self.run_jobs_with_knowledge(&jobs, snapshot)
    }

    /// Sweeps a corpus with *durable* cross-case learning: the knowledge
    /// snapshot is loaded from `kb_in` (empty when `None`), the batch
    /// runs exactly like [`Engine::run_batch_learned`], and the merged
    /// base is saved atomically to `kb_out` — so consecutive CLI
    /// invocations chain their learning instead of starting cold.
    ///
    /// Both paths accept either store layout: a single `.rbkb` file or a
    /// sharded `.rbkb.d/` directory. Saving into a sharded store merges
    /// the batch's deltas into **only the dirty shards** — a class no job
    /// learned anything new about keeps its segment file untouched on
    /// disk (surfaced as `kb.shards_written`/`kb.shards_skipped` in
    /// [`EngineStats`]).
    ///
    /// A missing or corrupt `kb_in` file is a typed [`StoreError`], never
    /// a silent cold start: warm-start results must be trustworthy.
    pub fn run_batch_stored(
        &self,
        system: &SystemSpec,
        cases: &[UbCase],
        base_seed: u64,
        kb_in: Option<&Path>,
        kb_out: Option<&Path>,
    ) -> Result<BatchOutcome, StoreError> {
        let snapshot = match kb_in {
            Some(path) => KnowledgeBase::load(path)?,
            None => KnowledgeBase::new(),
        };
        let mut outcome = self.run_batch_learned(system, cases, base_seed, &snapshot);
        if let Some(path) = kb_out {
            let report = outcome.knowledge.save_reported(path)?;
            outcome.stats.kb.shards_written = report.shards_written;
            outcome.stats.kb.shards_skipped = report.shards_skipped;
        }
        Ok(outcome)
    }

    /// Runs a *stateful* system over a corpus in order on the engine's
    /// sequential lane (cross-case learning makes these runs inherently
    /// order-dependent, as in the paper's sequential experiments), with
    /// gold references served through the engine's oracle.
    pub fn run_stateful(&self, system: &mut System, cases: &[UbCase]) -> Vec<CaseResult> {
        let oracle = self.shared_oracle();
        cases
            .iter()
            .map(|case| {
                let reference = oracle.judge(&case.gold).outputs.clone();
                system.repair_case_with(case, &reference)
            })
            .collect()
    }
}

/// The reference implementation the engine must reproduce byte-for-byte:
/// a plain serial loop with no threads and no cache, building each case's
/// system exactly like the engine does and resolving the gold reference
/// with a direct oracle run.
#[must_use]
pub fn run_serial_reference(
    system: &SystemSpec,
    cases: &[UbCase],
    base_seed: u64,
) -> Vec<CaseResult> {
    cases
        .iter()
        .map(|case| {
            let seed = crate::job::derive_case_seed(base_seed, &case.id);
            let reference = case.gold_outputs();
            system.build(seed).repair_case_with(case, &reference)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_dataset::Corpus;
    use rb_llm::ModelId;
    use rb_miri::UbClass;
    use rustbrain::RustBrainConfig;

    fn small_corpus() -> Corpus {
        Corpus::generate(11, 2, &[UbClass::Alloc, UbClass::Panic])
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(Engine::new(0).workers(), 1);
        assert_eq!(Engine::new(3).workers(), 3);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = Engine::new(2).run_batch(&SystemSpec::rust_assistant(), &[], 1);
        assert!(out.results.is_empty() && out.jobs.is_empty());
        assert_eq!(out.stats.cases, 0);
    }

    #[test]
    fn batch_matches_serial_reference() {
        let corpus = small_corpus();
        let spec = SystemSpec::brain(RustBrainConfig::for_model(ModelId::Gpt4, 0));
        let serial = run_serial_reference(&spec, &corpus.cases, 42);
        for workers in [1, 2, 4] {
            let out = Engine::new(workers).run_batch(&spec, &corpus.cases, 42);
            assert_eq!(out.results, serial, "{workers} workers diverged");
        }
    }

    #[test]
    fn results_keep_submission_order() {
        let corpus = small_corpus();
        let out = Engine::new(4).run_batch(&SystemSpec::llm(ModelId::Gpt35), &corpus.cases, 7);
        let ids: Vec<&str> = out.results.iter().map(|r| r.case_id.as_str()).collect();
        let expected: Vec<&str> = corpus.cases.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(ids, expected);
        assert!(out.jobs.windows(2).all(|w| w[0].index < w[1].index));
    }

    #[test]
    fn stats_account_for_every_case_and_worker() {
        let corpus = small_corpus();
        let engine = Engine::new(2);
        let out = engine.run_batch(&SystemSpec::rust_assistant(), &corpus.cases, 3);
        assert_eq!(out.stats.cases, corpus.len());
        assert_eq!(out.stats.workers, 2);
        assert_eq!(out.stats.worker_cases.iter().sum::<usize>(), corpus.len());
        assert_eq!(out.stats.worker_utilization.len(), 2);
        assert!(out.stats.cases_per_sec > 0.0);
        // Every gold reference went through the cache exactly once per
        // distinct program.
        let c = out.stats.cache;
        assert_eq!(c.hits + c.misses, corpus.len() as u64);
    }

    #[test]
    fn shared_cache_turns_second_sweep_into_hits() {
        let corpus = small_corpus();
        let cache = Arc::new(OracleCache::new());
        let spec = SystemSpec::rust_assistant();
        let first = Engine::with_cache(1, Arc::clone(&cache)).run_batch(&spec, &corpus.cases, 5);
        let second = Engine::with_cache(2, Arc::clone(&cache)).run_batch(&spec, &corpus.cases, 5);
        assert_eq!(first.results, second.results);
        assert_eq!(second.stats.cache.misses, 0, "warm cache re-ran the oracle");
        assert_eq!(second.stats.cache.hits, corpus.len() as u64);
    }
}
