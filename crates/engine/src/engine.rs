//! The batch executor: a fixed-size worker pool over `std::thread` and
//! `mpsc` channels, sharing one [`OracleCache`], merging results
//! deterministically.
//!
//! Determinism contract: the merged [`CaseResult`] stream of
//! [`Engine::run_batch`] is byte-identical for every worker count,
//! because (a) each job builds a *fresh* system seeded only from the
//! batch seed and the case id ([`crate::job::derive_case_seed`]), (b) the
//! oracle cache can change *when* a verdict is computed but never *what*
//! it is (the oracle is pure), and (c) results are merged back into
//! submission order. [`run_serial_reference`] is the plain-loop,
//! cache-free reference implementation the property tests compare
//! against.

use crate::cache::OracleCache;
use crate::job::{JobResult, JobSpec};
use crate::stats::EngineStats;
use crate::system::{CaseResult, System, SystemSpec};
use rb_dataset::UbCase;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Outcome of one batch: the deterministic result stream plus telemetry.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Per-case results, in submission order (byte-identical for any
    /// worker count).
    pub results: Vec<CaseResult>,
    /// Per-job execution records (worker assignment, wall time), in
    /// submission order. Scheduling-dependent — telemetry only.
    pub jobs: Vec<JobResult>,
    /// Batch telemetry.
    pub stats: EngineStats,
}

/// The parallel batch-repair engine.
pub struct Engine {
    workers: usize,
    cache: Arc<OracleCache>,
}

impl Engine {
    /// An engine with `workers` threads (clamped to at least 1) and a
    /// private oracle cache.
    #[must_use]
    pub fn new(workers: usize) -> Engine {
        Engine::with_cache(workers, Arc::new(OracleCache::new()))
    }

    /// An engine sharing an existing oracle cache (e.g. across sweeps, so
    /// a second sweep over the same corpus never re-runs the oracle).
    #[must_use]
    pub fn with_cache(workers: usize, cache: Arc<OracleCache>) -> Engine {
        Engine {
            workers: workers.max(1),
            cache,
        }
    }

    /// An engine on the process-wide cache ([`OracleCache::global`]).
    #[must_use]
    pub fn with_global_cache(workers: usize) -> Engine {
        Engine::with_cache(workers, OracleCache::global())
    }

    /// Worker threads this engine schedules onto.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The oracle cache the engine's jobs share.
    #[must_use]
    pub fn cache(&self) -> &Arc<OracleCache> {
        &self.cache
    }

    /// Executes one job: build the system at the job's derived seed,
    /// resolve the gold reference through the cache, repair. The flag is
    /// whether the reference lookup was a cache hit.
    fn execute(job: &JobSpec, cache: &OracleCache) -> (CaseResult, bool) {
        let mut system = job.system.build(job.seed);
        let (report, cache_hit) = cache.lookup(&job.case.gold);
        let result = system.repair_case_with(&job.case, &report.outputs);
        (result, cache_hit)
    }

    /// Runs a prepared job list on the worker pool and merges the results
    /// back into submission order.
    #[must_use]
    pub fn run_jobs(&self, jobs: &[JobSpec]) -> BatchOutcome {
        let started = Instant::now();
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<JobResult>();

        let mut executed: Vec<JobResult> = Vec::with_capacity(jobs.len());
        std::thread::scope(|scope| {
            for worker in 0..self.workers {
                let tx = tx.clone();
                let next = &next;
                let cache = &self.cache;
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else { break };
                    let job_started = Instant::now();
                    let (result, cache_hit) = Engine::execute(job, cache);
                    let sent = tx.send(JobResult {
                        index: job.index,
                        worker,
                        wall_ms: job_started.elapsed().as_secs_f64() * 1e3,
                        cache_hit,
                        result,
                    });
                    if sent.is_err() {
                        break; // receiver gone: the batch was abandoned
                    }
                });
            }
            drop(tx); // workers hold the remaining senders
            executed.extend(rx.iter());
        });
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;

        // Deterministic merge: scheduling decided arrival order, the
        // submission index restores it.
        executed.sort_by_key(|j| j.index);
        let results: Vec<CaseResult> = executed.iter().map(|j| j.result.clone()).collect();

        let mut busy_ms = vec![0.0f64; self.workers];
        let mut worker_cases = vec![0usize; self.workers];
        for j in &executed {
            busy_ms[j.worker] += j.wall_ms;
            worker_cases[j.worker] += 1;
        }
        // Per-job attribution, not a delta of the shared counters: other
        // batches may be running on the same cache concurrently, and
        // their lookups must not leak into this batch's telemetry.
        let hits = executed.iter().filter(|j| j.cache_hit).count() as u64;
        let cache = crate::cache::CacheStats {
            hits,
            misses: executed.len() as u64 - hits,
            entries: self.cache.stats().entries,
        };
        let stats = EngineStats {
            workers: self.workers,
            cases: results.len(),
            wall_ms,
            cases_per_sec: if wall_ms > 0.0 {
                results.len() as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            worker_utilization: busy_ms
                .iter()
                .map(|b| {
                    if wall_ms > 0.0 {
                        (b / wall_ms).min(1.0)
                    } else {
                        0.0
                    }
                })
                .collect(),
            worker_cases,
            simulated_overhead_ms: results.iter().map(|r| r.overhead_ms).sum(),
            cache,
        };
        BatchOutcome {
            results,
            jobs: executed,
            stats,
        }
    }

    /// Sweeps a corpus: one job per case, seeds derived from case ids,
    /// fanned out across the pool.
    #[must_use]
    pub fn run_batch(&self, system: &SystemSpec, cases: &[UbCase], base_seed: u64) -> BatchOutcome {
        let jobs: Vec<JobSpec> = cases
            .iter()
            .enumerate()
            .map(|(i, case)| JobSpec::new(i, case.clone(), system.clone(), base_seed))
            .collect();
        self.run_jobs(&jobs)
    }

    /// Runs a *stateful* system over a corpus in order on the engine's
    /// sequential lane (cross-case learning makes these runs inherently
    /// order-dependent, as in the paper's sequential experiments), with
    /// gold references served from the shared oracle cache.
    pub fn run_stateful(&self, system: &mut System, cases: &[UbCase]) -> Vec<CaseResult> {
        cases
            .iter()
            .map(|case| {
                let reference = self.cache.outputs(&case.gold);
                system.repair_case_with(case, &reference)
            })
            .collect()
    }
}

/// The reference implementation the engine must reproduce byte-for-byte:
/// a plain serial loop with no threads and no cache, building each case's
/// system exactly like the engine does and resolving the gold reference
/// with a direct oracle run.
#[must_use]
pub fn run_serial_reference(
    system: &SystemSpec,
    cases: &[UbCase],
    base_seed: u64,
) -> Vec<CaseResult> {
    cases
        .iter()
        .map(|case| {
            let seed = crate::job::derive_case_seed(base_seed, &case.id);
            let reference = case.gold_outputs();
            system.build(seed).repair_case_with(case, &reference)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_dataset::Corpus;
    use rb_llm::ModelId;
    use rb_miri::UbClass;
    use rustbrain::RustBrainConfig;

    fn small_corpus() -> Corpus {
        Corpus::generate(11, 2, &[UbClass::Alloc, UbClass::Panic])
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(Engine::new(0).workers(), 1);
        assert_eq!(Engine::new(3).workers(), 3);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = Engine::new(2).run_batch(&SystemSpec::rust_assistant(), &[], 1);
        assert!(out.results.is_empty() && out.jobs.is_empty());
        assert_eq!(out.stats.cases, 0);
    }

    #[test]
    fn batch_matches_serial_reference() {
        let corpus = small_corpus();
        let spec = SystemSpec::brain(RustBrainConfig::for_model(ModelId::Gpt4, 0));
        let serial = run_serial_reference(&spec, &corpus.cases, 42);
        for workers in [1, 2, 4] {
            let out = Engine::new(workers).run_batch(&spec, &corpus.cases, 42);
            assert_eq!(out.results, serial, "{workers} workers diverged");
        }
    }

    #[test]
    fn results_keep_submission_order() {
        let corpus = small_corpus();
        let out = Engine::new(4).run_batch(&SystemSpec::llm(ModelId::Gpt35), &corpus.cases, 7);
        let ids: Vec<&str> = out.results.iter().map(|r| r.case_id.as_str()).collect();
        let expected: Vec<&str> = corpus.cases.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(ids, expected);
        assert!(out.jobs.windows(2).all(|w| w[0].index < w[1].index));
    }

    #[test]
    fn stats_account_for_every_case_and_worker() {
        let corpus = small_corpus();
        let engine = Engine::new(2);
        let out = engine.run_batch(&SystemSpec::rust_assistant(), &corpus.cases, 3);
        assert_eq!(out.stats.cases, corpus.len());
        assert_eq!(out.stats.workers, 2);
        assert_eq!(out.stats.worker_cases.iter().sum::<usize>(), corpus.len());
        assert_eq!(out.stats.worker_utilization.len(), 2);
        assert!(out.stats.cases_per_sec > 0.0);
        // Every gold reference went through the cache exactly once per
        // distinct program.
        let c = out.stats.cache;
        assert_eq!(c.hits + c.misses, corpus.len() as u64);
    }

    #[test]
    fn shared_cache_turns_second_sweep_into_hits() {
        let corpus = small_corpus();
        let cache = Arc::new(OracleCache::new());
        let spec = SystemSpec::rust_assistant();
        let first = Engine::with_cache(1, Arc::clone(&cache)).run_batch(&spec, &corpus.cases, 5);
        let second = Engine::with_cache(2, Arc::clone(&cache)).run_batch(&spec, &corpus.cases, 5);
        assert_eq!(first.results, second.results);
        assert_eq!(second.stats.cache.misses, 0, "warm cache re-ran the oracle");
        assert_eq!(second.stats.cache.hits, corpus.len() as u64);
    }
}
