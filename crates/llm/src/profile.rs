//! Model profiles: capability parameters for the four simulated models.
//!
//! The numbers are calibrated so that *standalone* repair rates land in the
//! bands the paper reports (GPT-3.5 < Claude-3.5 ≈ GPT-4 < GPT-O1), and so
//! that the RustBrain pipeline lifts each model by the paper's margins. The
//! relative orderings — which is what the reproduction must preserve — are
//! produced by the pipeline mechanisms, not hard-coded.

use crate::rules::RuleKind;
use rb_miri::UbClass;
use serde::{Deserialize, Serialize};

/// Identifier of a simulated model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModelId {
    /// GPT-3.5-turbo class.
    Gpt35,
    /// GPT-4 class.
    Gpt4,
    /// GPT-O1 reasoning class.
    GptO1,
    /// Claude 3.5 Sonnet class.
    Claude35,
}

impl ModelId {
    /// All models.
    pub const ALL: [ModelId; 4] = [
        ModelId::Gpt35,
        ModelId::Gpt4,
        ModelId::GptO1,
        ModelId::Claude35,
    ];

    /// Display label as used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ModelId::Gpt35 => "GPT-3.5",
            ModelId::Gpt4 => "GPT-4",
            ModelId::GptO1 => "GPT-O1",
            ModelId::Claude35 => "Claude-3.5",
        }
    }

    /// The profile for this model.
    #[must_use]
    pub fn profile(self) -> ModelProfile {
        match self {
            ModelId::Gpt35 => ModelProfile {
                id: self,
                base_skill: 0.45,
                semantic_skill: 0.45,
                hallucination: 0.32,
                noise_scale: 1.3,
                latency_base_ms: 2_000.0,
                latency_per_token_ms: 6.0,
                token_limit: 4_096,
            },
            ModelId::Gpt4 => ModelProfile {
                id: self,
                base_skill: 0.68,
                semantic_skill: 0.70,
                hallucination: 0.17,
                noise_scale: 1.0,
                latency_base_ms: 4_000.0,
                latency_per_token_ms: 12.0,
                token_limit: 8_192,
            },
            ModelId::GptO1 => ModelProfile {
                id: self,
                base_skill: 0.80,
                semantic_skill: 0.82,
                hallucination: 0.08,
                noise_scale: 0.7,
                latency_base_ms: 15_000.0,
                latency_per_token_ms: 40.0,
                token_limit: 32_768,
            },
            ModelId::Claude35 => ModelProfile {
                id: self,
                base_skill: 0.58,
                semantic_skill: 0.72,
                hallucination: 0.16,
                noise_scale: 1.0,
                latency_base_ms: 3_500.0,
                latency_per_token_ms: 10.0,
                token_limit: 8_192,
            },
        }
    }
}

/// Capability parameters of a simulated model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Which model this profile belongs to.
    pub id: ModelId,
    /// Probability mass of ranking a correct repair family on top.
    pub base_skill: f64,
    /// Preference for semantics-preserving repairs over lazy guards.
    pub semantic_skill: f64,
    /// Base probability of emitting a hallucinated (wrong) edit.
    pub hallucination: f64,
    /// Scale of scoring noise (multiplied by temperature).
    pub noise_scale: f64,
    /// Fixed per-call latency in simulated milliseconds.
    pub latency_base_ms: f64,
    /// Additional latency per prompt token.
    pub latency_per_token_ms: f64,
    /// Context window in tokens; longer prompts are truncated.
    pub token_limit: usize,
}

impl ModelProfile {
    /// Per-UB-class skill multiplier: general-knowledge models are weaker
    /// on Rust-specific aliasing and provenance semantics, and the
    /// reasoning model is notably weak on "uncommon" panic-style errors
    /// (the paper's Fig. 10 observation).
    #[must_use]
    pub fn class_skill(&self, class: UbClass) -> f64 {
        (self.base_skill * self.class_multiplier(class)).min(0.98)
    }

    /// The per-class multiplier underlying [`ModelProfile::class_skill`];
    /// also used to scale semantic drift (a model weak on a class produces
    /// sloppier patches for it, even when the patch passes).
    #[must_use]
    pub fn class_multiplier(&self, class: UbClass) -> f64 {
        let rust_specific = matches!(
            class,
            UbClass::StackBorrow | UbClass::BothBorrow | UbClass::Provenance | UbClass::TailCall
        );
        let concurrency = matches!(class, UbClass::DataRace | UbClass::Concurrency);

        match self.id {
            ModelId::Gpt35 => {
                if rust_specific {
                    0.62
                } else if concurrency {
                    0.75
                } else {
                    1.0
                }
            }
            ModelId::Gpt4 => {
                if rust_specific {
                    0.78
                } else {
                    1.0
                }
            }
            ModelId::GptO1 => match class {
                UbClass::Panic => 0.30, // uncommon errors: O1 mis-diagnoses badly
                UbClass::FuncCall => 0.8,
                _ => 1.05,
            },
            ModelId::Claude35 => {
                if concurrency || rust_specific {
                    // "less effective than GPT-4 in understanding complex
                    // dependencies" (paper RQ2).
                    0.72
                } else {
                    1.0
                }
            }
        }
    }

    /// How much the model intrinsically favours a repair family; weak
    /// semantic skill shifts mass toward lazy guard/assert repairs.
    #[must_use]
    pub fn kind_preference(&self, kind: RuleKind) -> f64 {
        match kind {
            RuleKind::SafeReplace => 0.9 + 0.3 * self.semantic_skill,
            RuleKind::Modify => 0.7 + 0.6 * self.semantic_skill,
            RuleKind::Assert => 1.15 - 0.45 * self.semantic_skill,
            RuleKind::Hallucination => 0.0,
        }
    }

    /// Effective hallucination probability under a sampling temperature and
    /// `shots` retrieved knowledge examples (shots ground the model).
    #[must_use]
    pub fn effective_hallucination(&self, temperature: f64, shots: usize) -> f64 {
        let t = self.hallucination * (0.4 + 1.2 * temperature);
        let damp = 1.0 / (1.0 + shots as f64);
        (t * damp).clamp(0.0, 0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let g35 = ModelId::Gpt35.profile();
        let g4 = ModelId::Gpt4.profile();
        let o1 = ModelId::GptO1.profile();
        let c35 = ModelId::Claude35.profile();
        assert!(g35.base_skill < g4.base_skill);
        assert!(g4.base_skill < o1.base_skill);
        assert!((c35.base_skill - g4.base_skill).abs() < 0.15);
        assert!(g35.hallucination > g4.hallucination);
    }

    #[test]
    fn o1_weak_on_panics() {
        let o1 = ModelId::GptO1.profile();
        assert!(o1.class_skill(UbClass::Panic) < o1.class_skill(UbClass::Alloc));
    }

    #[test]
    fn claude_weak_on_dependencies() {
        let c = ModelId::Claude35.profile();
        let g = ModelId::Gpt4.profile();
        assert!(c.class_skill(UbClass::DataRace) < g.class_skill(UbClass::DataRace));
    }

    #[test]
    fn hallucination_rises_with_temperature() {
        let p = ModelId::Gpt4.profile();
        assert!(p.effective_hallucination(0.9, 0) > p.effective_hallucination(0.1, 0));
    }

    #[test]
    fn shots_ground_the_model() {
        let p = ModelId::Gpt35.profile();
        assert!(p.effective_hallucination(0.5, 2) < p.effective_hallucination(0.5, 0));
    }

    #[test]
    fn weak_models_prefer_asserts() {
        let weak = ModelId::Gpt35.profile();
        let strong = ModelId::GptO1.profile();
        assert!(weak.kind_preference(RuleKind::Assert) > strong.kind_preference(RuleKind::Assert));
        assert!(strong.kind_preference(RuleKind::Modify) > weak.kind_preference(RuleKind::Modify));
    }

    #[test]
    fn class_skill_bounded() {
        for id in ModelId::ALL {
            let p = id.profile();
            for c in UbClass::ALL {
                let s = p.class_skill(c);
                assert!((0.0..=0.98).contains(&s), "{id:?}/{c}: {s}");
            }
        }
    }
}
