//! The repair-rule library: concrete AST transformations a competent Rust
//! developer (or a well-prompted LLM) would apply for each family of UB.
//!
//! Rules are grouped into the paper's three repair categories (Principle 2):
//! *safe replacement*, *assertion/guarding*, and *semantic modification* —
//! plus a fourth group of *hallucination* edits modelling plausible-looking
//! but wrong patches that weak models emit.
//!
//! A rule inspects the program and the primary oracle diagnostic and, when
//! its pattern matches, produces a transformed program. Whether the result
//! actually passes the oracle (and preserves semantics) is decided later by
//! re-running the oracle — rules are proposals, not guarantees, exactly as
//! LLM patches are.

use rb_lang::ast::{
    BinOp, Block, BuiltinKind, Expr, IntTy, Lit, Mutability, Program, Stmt, StmtPath, Ty,
};
use rb_lang::visit::{
    containing_block_mut, for_each_expr_in_stmt, for_each_stmt, get_stmt, map_expr,
    map_exprs_in_stmt, walk_expr,
};
use rb_miri::{MiriError, UbKind};
use serde::{Deserialize, Serialize};

/// The paper's repair categories (plus hallucination noise).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RuleKind {
    /// Replace an unsafe operation with a safe API (prompt strategy 1).
    SafeReplace,
    /// Add assertions / guards preventing the UB (prompt strategy 2).
    Assert,
    /// Modify erroneous semantics while preserving intent (prompt 3).
    Modify,
    /// Plausible-but-wrong edits produced by model noise.
    Hallucination,
}

/// All concrete repair rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RepairRule {
    // -- safe replacement -----------------------------------------------------
    /// Dereference the original pointer instead of an int-laundered copy.
    UseDirectPointer,
    /// `transmute::<u8, bool>(x)` → `x != 0`.
    BoolFromComparison,
    /// `transmute::<[u8; N], Int>(a)` → `from_le_bytes::<intN>(a) as Int`.
    TransmuteBytesToFromLe,
    /// Replace a forged reference with a borrow of an in-scope local.
    BorrowLocalInstead,
    /// Replace a forged function pointer with the real function.
    DirectFnUse,
    /// Re-type a wrongly-transmuted function pointer and pad call args.
    FixFnPtrSignature,
    /// Replace plain static accesses in threads with atomic ops.
    UseAtomics,
    /// Widen overflowing arithmetic to `i64`.
    WidenArithmetic,
    /// Take `&raw mut` of the owner instead of writing through a shared ref.
    UseRawMutDirect,
    // -- assertion / guarding -------------------------------------------------
    /// Guard a division with a zero check (else-print-0).
    GuardDivision,
    /// Guard an indexing statement with a bounds check.
    GuardIndex,
    /// Weaken a failing assertion to a trivially true one.
    WeakenAssert,
    /// Insert a (useless) non-null assertion before a pointer use.
    AssertNonNull,
    /// Wrap every spawned body in the same lock.
    LockSpawnBodies,
    // -- semantic modification ------------------------------------------------
    /// Remove a second `dealloc` of the same pointer.
    RemoveDoubleFree,
    /// Fix `dealloc` layout arguments from the matching `alloc`.
    FixDeallocLayout,
    /// Append the missing `dealloc` at the end of `main`.
    AddDealloc,
    /// Splice a scope's body into the parent, extending local lifetimes.
    HoistLocalOut,
    /// Move a premature `dealloc` to the end of `main`.
    ReorderDeallocAfterUse,
    /// Snap a `ptr_offset` literal down to offset 0.
    AlignOffsetDown,
    /// Snap a `ptr_offset` literal up to the read type's alignment.
    AlignOffsetUp,
    /// Move the initialising write before the faulting read.
    InitializeBeforeRead,
    /// Initialise the union field that is actually read.
    UnionUseLargestField,
    /// Take the raw pointer after the conflicting write, not before.
    RetakePointerAfterWrite,
    /// Collapse two exclusive reborrows into one.
    SingleMutBorrow,
    /// Move a racing main-thread read after `join`.
    MoveReadAfterJoin,
    /// Turn a mismatched tail call into a plain call + return.
    ReplaceTailCallWithReturn,
    /// Fix an out-of-bounds index literal to `len - 1`.
    FixLiteralIndex,
    /// Separate overlapping `copy_nonoverlapping` ranges.
    CopyWithoutOverlap,
    // -- hallucination ---------------------------------------------------------
    /// Delete the statement the diagnostic points at.
    DeleteStatement,
    /// Duplicate the statement the diagnostic points at.
    DuplicateStatement,
    /// Perturb the first integer literal in the faulting statement.
    PerturbLiteral,
    /// Wrap the faulting statement in `if false { .. }`.
    DisableStatement,
    /// Unwrap an `unsafe` block, leaving unsafe ops in safe context (the
    /// patch no longer compiles — E0133).
    StripUnsafe,
    /// Rename a variable at its definition only (undefined-variable error).
    BreakBinding,
    /// Change a let's declared type without changing the initialiser.
    BreakTypes,
}

impl RepairRule {
    /// Every rule, in a stable order.
    pub const ALL: [RepairRule; 31] = [
        RepairRule::UseDirectPointer,
        RepairRule::BoolFromComparison,
        RepairRule::TransmuteBytesToFromLe,
        RepairRule::BorrowLocalInstead,
        RepairRule::DirectFnUse,
        RepairRule::FixFnPtrSignature,
        RepairRule::UseAtomics,
        RepairRule::WidenArithmetic,
        RepairRule::UseRawMutDirect,
        RepairRule::GuardDivision,
        RepairRule::GuardIndex,
        RepairRule::WeakenAssert,
        RepairRule::AssertNonNull,
        RepairRule::LockSpawnBodies,
        RepairRule::RemoveDoubleFree,
        RepairRule::FixDeallocLayout,
        RepairRule::AddDealloc,
        RepairRule::HoistLocalOut,
        RepairRule::ReorderDeallocAfterUse,
        RepairRule::AlignOffsetDown,
        RepairRule::AlignOffsetUp,
        RepairRule::InitializeBeforeRead,
        RepairRule::UnionUseLargestField,
        RepairRule::RetakePointerAfterWrite,
        RepairRule::SingleMutBorrow,
        RepairRule::MoveReadAfterJoin,
        RepairRule::ReplaceTailCallWithReturn,
        RepairRule::FixLiteralIndex,
        RepairRule::CopyWithoutOverlap,
        RepairRule::DeleteStatement,
        RepairRule::DuplicateStatement,
    ];

    /// The hallucination edits (drawn instead of real rules by model
    /// noise). Breaking edits — patches that stop compiling — are listed
    /// multiple times: they are what failing LLM patches most often look
    /// like, so they are drawn more often.
    pub const HALLUCINATIONS: [RepairRule; 9] = [
        RepairRule::DeleteStatement,
        RepairRule::DuplicateStatement,
        RepairRule::PerturbLiteral,
        RepairRule::DisableStatement,
        RepairRule::StripUnsafe,
        RepairRule::StripUnsafe,
        RepairRule::BreakBinding,
        RepairRule::BreakTypes,
        RepairRule::BreakTypes,
    ];

    /// Which repair category the rule belongs to.
    #[must_use]
    pub fn kind(self) -> RuleKind {
        use RepairRule::*;
        match self {
            UseDirectPointer
            | BoolFromComparison
            | TransmuteBytesToFromLe
            | BorrowLocalInstead
            | DirectFnUse
            | FixFnPtrSignature
            | UseAtomics
            | WidenArithmetic
            | UseRawMutDirect => RuleKind::SafeReplace,
            GuardDivision | GuardIndex | WeakenAssert | AssertNonNull | LockSpawnBodies => {
                RuleKind::Assert
            }
            RemoveDoubleFree
            | FixDeallocLayout
            | AddDealloc
            | HoistLocalOut
            | ReorderDeallocAfterUse
            | AlignOffsetDown
            | AlignOffsetUp
            | InitializeBeforeRead
            | UnionUseLargestField
            | RetakePointerAfterWrite
            | SingleMutBorrow
            | MoveReadAfterJoin
            | ReplaceTailCallWithReturn
            | FixLiteralIndex
            | CopyWithoutOverlap => RuleKind::Modify,
            DeleteStatement | DuplicateStatement | PerturbLiteral | DisableStatement
            | StripUnsafe | BreakBinding | BreakTypes => RuleKind::Hallucination,
        }
    }

    /// Rule name for prompts and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        use RepairRule::*;
        match self {
            UseDirectPointer => "use-direct-pointer",
            BoolFromComparison => "bool-from-comparison",
            TransmuteBytesToFromLe => "from-le-bytes",
            BorrowLocalInstead => "borrow-local",
            DirectFnUse => "direct-fn-use",
            FixFnPtrSignature => "fix-fnptr-signature",
            UseAtomics => "use-atomics",
            WidenArithmetic => "widen-arithmetic",
            UseRawMutDirect => "raw-mut-direct",
            GuardDivision => "guard-division",
            GuardIndex => "guard-index",
            WeakenAssert => "weaken-assert",
            AssertNonNull => "assert-non-null",
            LockSpawnBodies => "lock-spawn-bodies",
            RemoveDoubleFree => "remove-double-free",
            FixDeallocLayout => "fix-dealloc-layout",
            AddDealloc => "add-dealloc",
            HoistLocalOut => "hoist-local-out",
            ReorderDeallocAfterUse => "reorder-dealloc",
            AlignOffsetDown => "align-offset-down",
            AlignOffsetUp => "align-offset-up",
            InitializeBeforeRead => "initialize-before-read",
            UnionUseLargestField => "union-largest-field",
            RetakePointerAfterWrite => "retake-pointer",
            SingleMutBorrow => "single-mut-borrow",
            MoveReadAfterJoin => "move-read-after-join",
            ReplaceTailCallWithReturn => "tailcall-to-return",
            FixLiteralIndex => "fix-literal-index",
            CopyWithoutOverlap => "copy-without-overlap",
            DeleteStatement => "delete-statement",
            DuplicateStatement => "duplicate-statement",
            PerturbLiteral => "perturb-literal",
            DisableStatement => "disable-statement",
            StripUnsafe => "strip-unsafe",
            BreakBinding => "break-binding",
            BreakTypes => "break-types",
        }
    }

    /// Whether `kind` is the failure this rule canonically addresses.
    /// Broadly-applicable rules still have a home turf; a skilled model
    /// prefers the rule whose home turf matches the diagnostic.
    #[must_use]
    pub fn addresses(self, kind: UbKind) -> bool {
        use RepairRule::*;
        match self {
            UseDirectPointer => matches!(kind, UbKind::NoProvenance | UbKind::CrossAllocation),
            BoolFromComparison => matches!(kind, UbKind::InvalidValue),
            TransmuteBytesToFromLe => matches!(kind, UbKind::TransmuteSize),
            BorrowLocalInstead => matches!(kind, UbKind::InvalidRef),
            DirectFnUse => matches!(kind, UbKind::InvalidFnPtr),
            FixFnPtrSignature => matches!(kind, UbKind::FnSigMismatch),
            UseAtomics | LockSpawnBodies => {
                matches!(kind, UbKind::RaceOnStatic | UbKind::RaceOnHeap)
            }
            WidenArithmetic => matches!(kind, UbKind::UncheckedOverflow | UbKind::PanicOverflow),
            UseRawMutDirect => matches!(kind, UbKind::WriteThroughShared),
            GuardDivision => matches!(kind, UbKind::PanicDivZero),
            GuardIndex | FixLiteralIndex => matches!(kind, UbKind::PanicIndex),
            WeakenAssert => matches!(kind, UbKind::PanicAssert),
            AssertNonNull => false, // plausible everywhere, right nowhere
            RemoveDoubleFree => matches!(kind, UbKind::DoubleFree),
            FixDeallocLayout => matches!(kind, UbKind::BadDealloc),
            AddDealloc => matches!(kind, UbKind::Leak),
            HoistLocalOut => matches!(kind, UbKind::UseAfterScope),
            ReorderDeallocAfterUse => matches!(kind, UbKind::UseAfterFree),
            // The deliberately ambiguous pair (paper Fig. 3: the same
            // unsafe API needs different substitutions depending on
            // context): both claim both failure kinds, and only feedback /
            // knowledge can tell which one a given structure needs.
            AlignOffsetDown | AlignOffsetUp => {
                matches!(kind, UbKind::OutOfBounds | UbKind::UnalignedAccess)
            }
            InitializeBeforeRead => matches!(kind, UbKind::UninitRead | UbKind::Precondition),
            UnionUseLargestField => matches!(kind, UbKind::UninitRead),
            RetakePointerAfterWrite => matches!(kind, UbKind::StackBorrowViolation),
            SingleMutBorrow => matches!(kind, UbKind::ConflictingMutBorrows),
            MoveReadAfterJoin => matches!(kind, UbKind::RaceOnStatic),
            ReplaceTailCallWithReturn => matches!(kind, UbKind::TailCallMismatch),
            CopyWithoutOverlap => matches!(kind, UbKind::Precondition),
            DeleteStatement | DuplicateStatement | PerturbLiteral | DisableStatement
            | StripUnsafe | BreakBinding | BreakTypes => false,
        }
    }

    /// Attempts to apply the rule, returning the transformed program when
    /// the rule's pattern matches. `err` is the diagnostic being repaired.
    #[must_use]
    pub fn apply(self, prog: &Program, err: &MiriError) -> Option<Program> {
        let mut out = prog.clone();
        let ok = match self {
            RepairRule::UseDirectPointer => use_direct_pointer(&mut out, err).is_some(),
            RepairRule::BoolFromComparison => bool_from_comparison(&mut out).is_some(),
            RepairRule::TransmuteBytesToFromLe => bytes_to_from_le(&mut out).is_some(),
            RepairRule::BorrowLocalInstead => borrow_local_instead(&mut out).is_some(),
            RepairRule::DirectFnUse => direct_fn_use(&mut out).is_some(),
            RepairRule::FixFnPtrSignature => fix_fnptr_signature(&mut out).is_some(),
            RepairRule::UseAtomics => use_atomics(&mut out).is_some(),
            RepairRule::WidenArithmetic => widen_arithmetic(&mut out, err).is_some(),
            RepairRule::UseRawMutDirect => use_raw_mut_direct(&mut out).is_some(),
            RepairRule::GuardDivision => guard_division(&mut out, err).is_some(),
            RepairRule::GuardIndex => guard_index(&mut out, err).is_some(),
            RepairRule::WeakenAssert => weaken_assert(&mut out, err).is_some(),
            RepairRule::AssertNonNull => assert_non_null(&mut out, err).is_some(),
            RepairRule::LockSpawnBodies => lock_spawn_bodies(&mut out).is_some(),
            RepairRule::RemoveDoubleFree => remove_double_free(&mut out, err).is_some(),
            RepairRule::FixDeallocLayout => fix_dealloc_layout(&mut out, err).is_some(),
            RepairRule::AddDealloc => add_dealloc(&mut out).is_some(),
            RepairRule::HoistLocalOut => hoist_local_out(&mut out).is_some(),
            RepairRule::ReorderDeallocAfterUse => reorder_dealloc(&mut out, err).is_some(),
            RepairRule::AlignOffsetDown => align_offset(&mut out, err, false).is_some(),
            RepairRule::AlignOffsetUp => align_offset(&mut out, err, true).is_some(),
            RepairRule::InitializeBeforeRead => initialize_before_read(&mut out, err).is_some(),
            RepairRule::UnionUseLargestField => union_largest_field(&mut out).is_some(),
            RepairRule::RetakePointerAfterWrite => retake_pointer(&mut out, err).is_some(),
            RepairRule::SingleMutBorrow => single_mut_borrow(&mut out).is_some(),
            RepairRule::MoveReadAfterJoin => move_read_after_join(&mut out).is_some(),
            RepairRule::ReplaceTailCallWithReturn => tailcall_to_return(&mut out).is_some(),
            RepairRule::FixLiteralIndex => fix_literal_index(&mut out, err).is_some(),
            RepairRule::CopyWithoutOverlap => copy_without_overlap(&mut out).is_some(),
            RepairRule::DeleteStatement => delete_statement(&mut out, err).is_some(),
            RepairRule::DuplicateStatement => duplicate_statement(&mut out, err).is_some(),
            RepairRule::PerturbLiteral => perturb_literal(&mut out, err).is_some(),
            RepairRule::DisableStatement => disable_statement(&mut out, err).is_some(),
            RepairRule::StripUnsafe => strip_unsafe(&mut out).is_some(),
            RepairRule::BreakBinding => break_binding(&mut out).is_some(),
            RepairRule::BreakTypes => break_types(&mut out).is_some(),
        };
        ok.then_some(out)
    }

    /// All non-hallucination rules that match the program/diagnostic.
    #[must_use]
    pub fn candidates(prog: &Program, err: &MiriError) -> Vec<RepairRule> {
        RepairRule::ALL
            .iter()
            .copied()
            .filter(|r| r.kind() != RuleKind::Hallucination)
            .filter(|r| r.apply(prog, err).is_some())
            .collect()
    }
}

/// Applies *semantic drift*: the plausible-but-sloppy value change real
/// LLM patches often carry (an off-by-one constant, a tweaked initialiser).
/// The program usually still passes the oracle afterwards, but its
/// observable output no longer matches the gold reference — the mechanism
/// behind the paper's pass-vs-execution gap.
#[must_use]
pub fn apply_semantic_drift(prog: &Program) -> Option<Program> {
    let mut out = prog.clone();
    let done = std::cell::Cell::new(false);
    let bump = |e: &mut Expr| {
        if done.get() {
            return;
        }
        if let Expr::Lit(Lit::Int(v, t)) = e {
            if !matches!(t, IntTy::Usize) {
                *e = Expr::Lit(Lit::Int(t.wrap(*v + 1), *t));
                done.set(true);
            }
        }
    };
    // Perturb the first literal in a *value* position: printed values,
    // written values, union initialisers, atomic stores, plain-value lets.
    // Layout arguments (sizes, alignments, offsets) are left alone — models
    // drift on domain values, not on the mechanics they just repaired.
    rb_lang::visit::map_exprs(&mut out, &mut |e| match e {
        Expr::Builtin(BuiltinKind::PtrWrite | BuiltinKind::AtomicStore, _, args) => {
            if let Some(v) = args.get_mut(1) {
                bump(v);
            }
        }
        Expr::UnionLit(_, _, v) => bump(v),
        _ => {}
    });
    if !done.get() {
        for f in &mut out.funcs {
            for s in &mut f.body.stmts {
                if done.get() {
                    break;
                }
                match s {
                    Stmt::Print(e) => map_expr(e, &mut |x| bump(x)),
                    Stmt::Let {
                        init,
                        ty: Ty::Int(_) | Ty::Bool,
                        ..
                    } => bump(init),
                    Stmt::Assign { value, .. } => bump(value),
                    _ => {}
                }
            }
        }
    }
    done.get().then_some(out)
}

// ---- shared helpers ---------------------------------------------------------

fn main_body(prog: &mut Program) -> Option<&mut Block> {
    prog.funcs
        .iter_mut()
        .find(|f| f.name == "main")
        .map(|f| &mut f.body)
}

fn err_path(err: &MiriError) -> Option<&StmtPath> {
    err.path.as_ref()
}

/// Does the statement (recursively) contain an expression matching `pred`?
fn stmt_contains(s: &Stmt, pred: &mut dyn FnMut(&Expr) -> bool) -> bool {
    let mut found = false;
    deep_exprs(s, &mut |e| {
        walk_expr(e, &mut |x| {
            if pred(x) {
                found = true;
            }
        });
    });
    found
}

/// Visits the top-level expressions of a statement and of all statements in
/// nested blocks.
fn deep_exprs(s: &Stmt, f: &mut dyn FnMut(&Expr)) {
    for_each_expr_in_stmt(s, |e| f(e));
    match s {
        Stmt::Unsafe(b) | Stmt::Scope(b) | Stmt::Spawn(b) | Stmt::Lock(_, b) => {
            for inner in &b.stmts {
                deep_exprs(inner, f);
            }
        }
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            for inner in &then_blk.stmts {
                deep_exprs(inner, f);
            }
            if let Some(e) = else_blk {
                for inner in &e.stmts {
                    deep_exprs(inner, f);
                }
            }
        }
        Stmt::While { body, .. } => {
            for inner in &body.stmts {
                deep_exprs(inner, f);
            }
        }
        _ => {}
    }
}

/// Rewrites every expression in the statement at `path` (recursively).
fn rewrite_stmt_at(prog: &mut Program, path: &StmtPath, f: &mut dyn FnMut(&mut Expr)) -> bool {
    let Some((block, idx)) = containing_block_mut(prog, path) else {
        return false;
    };
    let Some(stmt) = block.stmts.get_mut(idx) else {
        return false;
    };
    map_exprs_in_stmt(stmt, &mut |e| f(e));
    true
}

fn int_lit(v: i64, t: IntTy) -> Expr {
    Expr::Lit(Lit::Int(i128::from(v), t))
}

/// Finds, program-wide, the pointer-variable name and layout arguments of
/// the first `alloc` call assigned to a variable.
fn find_alloc(prog: &Program) -> Option<(String, Expr, Expr)> {
    let mut found = None;
    for f in &prog.funcs {
        scan_block_for_alloc(&f.body, &mut found);
    }
    found
}

fn scan_block_for_alloc(b: &Block, found: &mut Option<(String, Expr, Expr)>) {
    for s in &b.stmts {
        if found.is_some() {
            return;
        }
        match s {
            Stmt::Let {
                name,
                init: Expr::Builtin(BuiltinKind::Alloc, _, args),
                ..
            }
            | Stmt::Assign {
                place: Expr::Var(name),
                value: Expr::Builtin(BuiltinKind::Alloc, _, args),
            } => {
                *found = Some((name.clone(), args[0].clone(), args[1].clone()));
            }
            Stmt::Unsafe(inner)
            | Stmt::Scope(inner)
            | Stmt::Spawn(inner)
            | Stmt::Lock(_, inner) => scan_block_for_alloc(inner, found),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                scan_block_for_alloc(then_blk, found);
                if let Some(e) = else_blk {
                    scan_block_for_alloc(e, found);
                }
            }
            Stmt::While { body, .. } => scan_block_for_alloc(body, found),
            _ => {}
        }
    }
}

// ---- safe replacement ---------------------------------------------------------

/// For provenance errors: a pointer variable was built from an integer
/// (`addr as *const T`, where `addr` came from `p as usize`, `ptr_addr(p)`
/// or `transmute(r)`). Rewire the laundered pointer's initialiser to borrow
/// directly from the original pointer/reference.
fn use_direct_pointer(prog: &mut Program, err: &MiriError) -> Option<()> {
    if !matches!(err.kind, UbKind::NoProvenance) {
        return None;
    }
    // Step 1: find `addr` definitions and their pointer origin.
    let mut origin: Option<(String, Expr)> = None; // (addr_var, original ptr expr)
    for_each_stmt(prog, |s, _| {
        if origin.is_some() {
            return;
        }
        if let Stmt::Let { name, init, .. } = s {
            match init {
                Expr::Cast(inner, Ty::Int(IntTy::Usize)) => {
                    origin = Some((name.clone(), (**inner).clone()));
                }
                Expr::Builtin(BuiltinKind::PtrAddr, _, args) => {
                    origin = Some((name.clone(), args[0].clone()));
                }
                Expr::Builtin(BuiltinKind::Transmute, tys, args)
                    if matches!(tys.first(), Some(Ty::Ref(..) | Ty::RawPtr(..)))
                        && matches!(tys.get(1), Some(Ty::Int(IntTy::Usize))) =>
                {
                    origin = Some((name.clone(), args[0].clone()));
                }
                _ => {}
            }
        }
    });
    let (addr_var, orig) = origin?;
    // Step 2: rewrite `<addr_var> as *const T` into `<orig> as *const T`.
    let mut changed = false;
    rb_lang::visit::map_exprs(prog, &mut |e| {
        if let Expr::Cast(inner, Ty::RawPtr(..)) = e {
            if matches!(&**inner, Expr::Var(n) if *n == addr_var) {
                **inner = orig.clone();
                changed = true;
            }
        }
    });
    changed.then_some(())
}

/// `transmute::<u8, bool>(x)` → `x != 0u8`.
fn bool_from_comparison(prog: &mut Program) -> Option<()> {
    let mut changed = false;
    rb_lang::visit::map_exprs(prog, &mut |e| {
        if let Expr::Builtin(BuiltinKind::Transmute, tys, args) = e {
            if tys.len() == 2 && tys[1] == Ty::Bool && tys[0] == Ty::Int(IntTy::U8) {
                *e = Expr::Binary(
                    BinOp::Ne,
                    Box::new(args[0].clone()),
                    Box::new(int_lit(0, IntTy::U8)),
                );
                changed = true;
            }
        }
    });
    changed.then_some(())
}

/// `transmute::<[u8; N], Int>(a)` (size-mismatched) →
/// `from_le_bytes::<uintN>(a) as Int`.
fn bytes_to_from_le(prog: &mut Program) -> Option<()> {
    let mut changed = false;
    rb_lang::visit::map_exprs(prog, &mut |e| {
        if let Expr::Builtin(BuiltinKind::Transmute, tys, args) = e {
            let (Some(Ty::Array(elem, n)), Some(Ty::Int(target))) = (tys.first(), tys.get(1))
            else {
                return;
            };
            if **elem != Ty::Int(IntTy::U8) {
                return;
            }
            let narrow = match n {
                1 => IntTy::U8,
                2 => IntTy::U16,
                4 => IntTy::U32,
                8 => IntTy::U64,
                _ => return,
            };
            let inner = Expr::Builtin(
                BuiltinKind::FromLeBytes,
                vec![Ty::Int(narrow)],
                vec![args[0].clone()],
            );
            *e = if narrow == *target {
                inner
            } else {
                Expr::Cast(Box::new(inner), Ty::Int(*target))
            };
            changed = true;
        }
    });
    changed.then_some(())
}

/// `transmute::<usize, &T>(k)` → `&local` for some in-scope local of type T.
fn borrow_local_instead(prog: &mut Program) -> Option<()> {
    // Find a local of the target type declared in main before the transmute.
    let mut target: Option<(Ty, String)> = None;
    let main = prog.funcs.iter().find(|f| f.name == "main")?;
    let mut locals: Vec<(String, Ty)> = Vec::new();
    fn scan(b: &Block, locals: &mut Vec<(String, Ty)>, target: &mut Option<(Ty, String)>) {
        for s in &b.stmts {
            if let Stmt::Let { name, ty, .. } = s {
                locals.push((name.clone(), ty.clone()));
            }
            let mut hit: Option<Ty> = None;
            for_each_expr_in_stmt(s, |top| {
                walk_expr(top, &mut |e| {
                    if let Expr::Builtin(BuiltinKind::Transmute, tys, _) = e {
                        if let (Some(Ty::Int(IntTy::Usize)), Some(Ty::Ref(inner, _))) =
                            (tys.first(), tys.get(1))
                        {
                            hit = Some((**inner).clone());
                        }
                    }
                });
            });
            if let Some(want) = hit {
                if target.is_none() {
                    if let Some((n, _)) = locals.iter().find(|(_, t)| *t == want) {
                        *target = Some((want, n.clone()));
                    }
                }
            }
            match s {
                Stmt::Unsafe(i) | Stmt::Scope(i) | Stmt::Spawn(i) | Stmt::Lock(_, i) => {
                    scan(i, locals, target);
                }
                _ => {}
            }
        }
    }
    scan(&main.body, &mut locals, &mut target);
    let (_, local) = target?;
    let mut changed = false;
    rb_lang::visit::map_exprs(prog, &mut |e| {
        if let Expr::Builtin(BuiltinKind::Transmute, tys, _) = e {
            if matches!(tys.first(), Some(Ty::Int(IntTy::Usize)))
                && matches!(tys.get(1), Some(Ty::Ref(..)))
            {
                *e = Expr::AddrOf(Mutability::Not, Box::new(Expr::Var(local.clone())));
                changed = true;
            }
        }
    });
    changed.then_some(())
}

/// `transmute::<usize, fn..>(addr)` → a real function with that signature.
fn direct_fn_use(prog: &mut Program) -> Option<()> {
    let mut fn_name: Option<String> = None;
    let mut want: Option<Ty> = None;
    for f in &prog.funcs {
        for s in &f.body.stmts {
            let mut w = None;
            deep_exprs(s, &mut |top| {
                walk_expr(top, &mut |e| {
                    if let Expr::Builtin(BuiltinKind::Transmute, tys, _) = e {
                        if matches!(tys.first(), Some(Ty::Int(IntTy::Usize)))
                            && matches!(tys.get(1), Some(Ty::FnPtr(..)))
                        {
                            w = Some(tys[1].clone());
                        }
                    }
                });
            });
            if w.is_some() {
                want = w;
            }
        }
    }
    let want = want?;
    for f in &prog.funcs {
        if f.name != "main" && f.fn_ptr_ty() == want {
            fn_name = Some(f.name.clone());
            break;
        }
    }
    let fn_name = fn_name?;
    let mut changed = false;
    rb_lang::visit::map_exprs(prog, &mut |e| {
        if let Expr::Builtin(BuiltinKind::Transmute, tys, _) = e {
            if matches!(tys.first(), Some(Ty::Int(IntTy::Usize)))
                && matches!(tys.get(1), Some(Ty::FnPtr(..)))
            {
                *e = Expr::Var(fn_name.clone());
                changed = true;
            }
        }
    });
    changed.then_some(())
}

/// A fn pointer transmuted between signatures: re-type the binding to the
/// source signature and pad call sites with `1` literals.
fn fix_fnptr_signature(prog: &mut Program) -> Option<()> {
    // Find `let f: fn(..) = transmute::<fnA, fnB>(g)`.
    let mut hit: Option<(String, Ty, Expr, usize, usize)> = None;
    for_each_stmt(prog, |s, _| {
        if hit.is_some() {
            return;
        }
        if let Stmt::Let {
            name,
            init: Expr::Builtin(BuiltinKind::Transmute, tys, args),
            ..
        } = s
        {
            if let (Some(src @ Ty::FnPtr(sp, _)), Some(Ty::FnPtr(dp, _))) =
                (tys.first(), tys.get(1))
            {
                hit = Some((
                    name.clone(),
                    src.clone(),
                    args[0].clone(),
                    sp.len(),
                    dp.len(),
                ));
            }
        }
    });
    let (fname, src_ty, fn_expr, src_arity, _dst_arity) = hit?;
    let mut changed = false;
    // Rewrite the binding.
    for f in &mut prog.funcs {
        for s in &mut f.body.stmts {
            fix_binding(s, &fname, &src_ty, &fn_expr, &mut changed);
        }
    }
    // Pad call sites.
    rb_lang::visit::map_exprs(prog, &mut |e| {
        if let Expr::CallPtr(callee, args) = e {
            if matches!(&**callee, Expr::Var(n) if *n == fname) && args.len() < src_arity {
                while args.len() < src_arity {
                    args.push(int_lit(1, IntTy::I32));
                }
                changed = true;
            }
        }
    });
    changed.then_some(())
}

fn fix_binding(s: &mut Stmt, fname: &str, src_ty: &Ty, fn_expr: &Expr, changed: &mut bool) {
    match s {
        Stmt::Let { name, ty, init } if name == fname => {
            if matches!(init, Expr::Builtin(BuiltinKind::Transmute, ..)) {
                *ty = src_ty.clone();
                *init = fn_expr.clone();
                *changed = true;
            }
        }
        Stmt::Unsafe(b) | Stmt::Scope(b) | Stmt::Spawn(b) | Stmt::Lock(_, b) => {
            for inner in &mut b.stmts {
                fix_binding(inner, fname, src_ty, fn_expr, changed);
            }
        }
        Stmt::If {
            then_blk, else_blk, ..
        } => {
            for inner in &mut then_blk.stmts {
                fix_binding(inner, fname, src_ty, fn_expr, changed);
            }
            if let Some(e) = else_blk {
                for inner in &mut e.stmts {
                    fix_binding(inner, fname, src_ty, fn_expr, changed);
                }
            }
        }
        _ => {}
    }
}

/// Inside every `spawn` block, turn plain mutable-static accesses into
/// atomic operations.
fn use_atomics(prog: &mut Program) -> Option<()> {
    let statics: Vec<String> = prog
        .statics
        .iter()
        .filter(|s| s.mutable)
        .map(|s| s.name.clone())
        .collect();
    if statics.is_empty() {
        return None;
    }
    let mut changed = false;
    let main = main_body(prog)?;
    for s in &mut main.stmts {
        if let Stmt::Spawn(body) = s {
            atomicise_block(body, &statics, &mut changed);
        }
    }
    changed.then_some(())
}

fn atomicise_block(b: &mut Block, statics: &[String], changed: &mut bool) {
    let mut new_stmts = Vec::with_capacity(b.stmts.len());
    for mut s in std::mem::take(&mut b.stmts) {
        match s {
            Stmt::Assign {
                place: Expr::StaticRef(g),
                mut value,
            } if statics.contains(&g) => {
                map_expr(&mut value, &mut |e| {
                    if matches!(e, Expr::StaticRef(n) if *n == g) {
                        *e = Expr::Builtin(
                            BuiltinKind::AtomicLoad,
                            Vec::new(),
                            vec![Expr::StaticRef(g.clone())],
                        );
                    }
                });
                new_stmts.push(Stmt::Expr(Expr::Builtin(
                    BuiltinKind::AtomicStore,
                    Vec::new(),
                    vec![Expr::StaticRef(g.clone()), value],
                )));
                *changed = true;
            }
            Stmt::Unsafe(ref mut inner) => {
                atomicise_block(inner, statics, changed);
                // If the unsafe block now contains only safe atomic ops,
                // keep it anyway (harmless).
                new_stmts.push(s);
            }
            Stmt::Print(mut e) => {
                map_expr(&mut e, &mut |x| {
                    if let Expr::StaticRef(n) = x {
                        if statics.contains(n) {
                            *x = Expr::Builtin(
                                BuiltinKind::AtomicLoad,
                                Vec::new(),
                                vec![Expr::StaticRef(n.clone())],
                            );
                            *changed = true;
                        }
                    }
                });
                new_stmts.push(Stmt::Print(e));
            }
            other => new_stmts.push(other),
        }
    }
    b.stmts = new_stmts;
}

/// Replace overflowing i32 arithmetic (checked or `unchecked_*`) with
/// widened i64 arithmetic.
fn widen_arithmetic(prog: &mut Program, err: &MiriError) -> Option<()> {
    if !matches!(
        err.kind,
        UbKind::UncheckedOverflow
            | UbKind::PanicOverflow
            | UbKind::PanicAssert
            | UbKind::PanicDivZero
    ) {
        return None;
    }
    let path = err_path(err)?.clone();
    let applied = rewrite_stmt_at(prog, &path, &mut |e| match e {
        Expr::Builtin(
            b @ (BuiltinKind::UncheckedAdd | BuiltinKind::UncheckedSub | BuiltinKind::UncheckedMul),
            tys,
            args,
        ) if matches!(tys.first(), Some(Ty::Int(IntTy::I32))) => {
            let op = match b {
                BuiltinKind::UncheckedAdd => BinOp::Add,
                BuiltinKind::UncheckedSub => BinOp::Sub,
                _ => BinOp::Mul,
            };
            *e = Expr::Binary(
                op,
                Box::new(Expr::Cast(Box::new(args[0].clone()), Ty::Int(IntTy::I64))),
                Box::new(Expr::Cast(Box::new(args[1].clone()), Ty::Int(IntTy::I64))),
            );
        }
        Expr::Binary(op @ (BinOp::Add | BinOp::Sub | BinOp::Mul), a, b)
            if !matches!(**a, Expr::Cast(..)) =>
        {
            *e = Expr::Binary(
                *op,
                Box::new(Expr::Cast(a.clone(), Ty::Int(IntTy::I64))),
                Box::new(Expr::Cast(b.clone(), Ty::Int(IntTy::I64))),
            );
        }
        _ => {}
    });
    applied.then_some(())
}

/// `let r: &T = &x; let p = r as *mut T;` → `let p: *mut T = &raw mut x;`
fn use_raw_mut_direct(prog: &mut Program) -> Option<()> {
    // Find the shared-ref binding.
    let mut ref_bind: Option<(String, Expr)> = None;
    for_each_stmt(prog, |s, _| {
        if ref_bind.is_some() {
            return;
        }
        if let Stmt::Let {
            name,
            ty: Ty::Ref(_, Mutability::Not),
            init: Expr::AddrOf(Mutability::Not, target),
        } = s
        {
            ref_bind = Some((name.clone(), (**target).clone()));
        }
    });
    let (rname, target) = ref_bind?;
    let mut changed = false;
    rb_lang::visit::map_exprs(prog, &mut |e| {
        if let Expr::Cast(inner, Ty::RawPtr(_, Mutability::Mut)) = e {
            if matches!(&**inner, Expr::Var(n) if *n == rname) {
                **inner = Expr::RawAddrOf(Mutability::Mut, Box::new(target.clone()));
                // Simplify `&raw mut x as *mut T` to just the raw addr-of.
                let Expr::Cast(inner2, _) = e else { return };
                *e = (**inner2).clone();
                changed = true;
            }
        }
    });
    changed.then_some(())
}

// ---- assertion / guarding -----------------------------------------------------

/// Wrap `print(a / b)` in `if b != 0 { .. } else { print(0); }`.
fn guard_division(prog: &mut Program, err: &MiriError) -> Option<()> {
    if err.kind != UbKind::PanicDivZero {
        return None;
    }
    let path = err_path(err)?.clone();
    let stmt = get_stmt(prog, &path).cloned()?;
    let mut divisor: Option<Expr> = None;
    let mut scan = stmt.clone();
    map_exprs_in_stmt(&mut scan, &mut |e| {
        if let Expr::Binary(BinOp::Div | BinOp::Rem, _, b) = e {
            divisor = Some((**b).clone());
        }
    });
    let divisor = divisor?;
    let guarded = Stmt::If {
        cond: Expr::Binary(BinOp::Ne, Box::new(divisor), Box::new(Expr::i32(0))),
        then_blk: Block::new(vec![stmt]),
        else_blk: Some(Block::new(vec![Stmt::Print(Expr::i32(0))])),
    };
    rb_lang::visit::replace_stmt(prog, &path, guarded).then_some(())
}

/// Wrap an indexing statement in a bounds guard (passes Miri, but skips the
/// operation — often semantically unacceptable, which is the point).
fn guard_index(prog: &mut Program, err: &MiriError) -> Option<()> {
    if err.kind != UbKind::PanicIndex {
        return None;
    }
    let path = err_path(err)?.clone();
    let stmt = get_stmt(prog, &path).cloned()?;
    let mut index_info: Option<(Expr, usize)> = None;
    let mut scan = stmt.clone();
    map_exprs_in_stmt(&mut scan, &mut |e| {
        if let Expr::Index(base, idx) = e {
            // Try to learn the array length from the base's declared type.
            let n = match &**base {
                Expr::Var(_) => None,
                _ => None,
            };
            index_info = Some(((**idx).clone(), n.unwrap_or(0)));
        }
    });
    let (idx, _) = index_info?;
    // Find the array length from a `let arr: [T; N]` in the same function.
    let mut len: usize = 0;
    for_each_stmt(prog, |s, _| {
        if let Stmt::Let {
            ty: Ty::Array(_, n),
            ..
        } = s
        {
            len = *n;
        }
    });
    if len == 0 {
        return None;
    }
    let guarded = Stmt::If {
        cond: Expr::Binary(BinOp::Lt, Box::new(idx), Box::new(Expr::i32(len as i32))),
        then_blk: Block::new(vec![stmt]),
        else_blk: Some(Block::new(vec![Stmt::Print(Expr::i32(0))])),
    };
    rb_lang::visit::replace_stmt(prog, &path, guarded).then_some(())
}

/// Replace a failing assertion's condition with `lhs >= 0`.
fn weaken_assert(prog: &mut Program, err: &MiriError) -> Option<()> {
    if err.kind != UbKind::PanicAssert {
        return None;
    }
    let path = err_path(err)?.clone();
    let stmt = rb_lang::visit::get_stmt_mut(prog, &path)?;
    if let Stmt::Assert { cond, msg } = stmt {
        if let Expr::Binary(_, lhs, _) = cond {
            *cond = Expr::Binary(BinOp::Ge, lhs.clone(), Box::new(Expr::i32(0)));
            *msg = "value negative".into();
            return Some(());
        }
    }
    None
}

/// Insert `assert(ptr_addr(p) != 0, ..)` before the faulting statement — a
/// plausible assertion that rarely fixes real UB (kept because real LLMs
/// propose it constantly).
fn assert_non_null(prog: &mut Program, err: &MiriError) -> Option<()> {
    let path = err_path(err)?.clone();
    let stmt = get_stmt(prog, &path)?;
    // Find a pointer variable used in the statement.
    let mut pvar: Option<String> = None;
    deep_exprs(stmt, &mut |top| {
        walk_expr(top, &mut |e| {
            if pvar.is_none() {
                if let Expr::Builtin(BuiltinKind::PtrRead | BuiltinKind::PtrWrite, _, args) = e {
                    let mut inner = args[0].clone();
                    map_expr(&mut inner, &mut |x| {
                        if let Expr::Var(n) = x {
                            pvar = Some(n.clone());
                        }
                    });
                }
            }
        });
    });
    let pvar = pvar?;
    let assert = Stmt::Unsafe(Block::new(vec![Stmt::Assert {
        cond: Expr::Binary(
            BinOp::Ne,
            Box::new(Expr::Builtin(
                BuiltinKind::PtrAddr,
                Vec::new(),
                vec![Expr::Var(pvar)],
            )),
            Box::new(Expr::int(0, IntTy::Usize)),
        ),
        msg: "null pointer".into(),
    }]));
    rb_lang::visit::insert_before(prog, &path, assert).then_some(())
}

/// Wrap every spawned body in `lock(1) { .. }`.
fn lock_spawn_bodies(prog: &mut Program) -> Option<()> {
    let mut changed = false;
    let main = main_body(prog)?;
    for s in &mut main.stmts {
        if let Stmt::Spawn(body) = s {
            if body.stmts.len() == 1 && matches!(body.stmts[0], Stmt::Lock(..)) {
                continue; // already locked
            }
            let inner = std::mem::take(body);
            body.stmts = vec![Stmt::Lock(1, inner)];
            changed = true;
        }
    }
    changed.then_some(())
}

// ---- semantic modification -----------------------------------------------------

fn stmt_deallocs_var(s: &Stmt, var: &mut Option<String>) -> bool {
    let mut yes = false;
    deep_exprs(s, &mut |top| {
        walk_expr(top, &mut |e| {
            if let Expr::Builtin(BuiltinKind::Dealloc, _, args) = e {
                yes = true;
                if let Expr::Var(n) = &args[0] {
                    *var = Some(n.clone());
                }
            }
        });
    });
    yes
}

/// Remove the duplicate `dealloc` statement the diagnostic points at.
fn remove_double_free(prog: &mut Program, err: &MiriError) -> Option<()> {
    if err.kind != UbKind::DoubleFree {
        return None;
    }
    let path = err_path(err)?.clone();
    let stmt = get_stmt(prog, &path)?;
    let mut var = None;
    if !stmt_deallocs_var(stmt, &mut var) {
        return None;
    }
    rb_lang::visit::remove_stmt(prog, &path).map(|_| ())
}

/// Fix a `dealloc`'s layout arguments from the matching `alloc`.
fn fix_dealloc_layout(prog: &mut Program, err: &MiriError) -> Option<()> {
    if err.kind != UbKind::BadDealloc {
        return None;
    }
    let (_, size, align) = find_alloc(prog)?;
    let path = err_path(err)?.clone();
    rewrite_stmt_at(prog, &path, &mut |e| {
        if let Expr::Builtin(BuiltinKind::Dealloc, _, args) = e {
            args[1] = size.clone();
            args[2] = align.clone();
        }
    })
    .then_some(())
}

/// Append `unsafe { dealloc(p, size, align); }` at the end of `main`.
fn add_dealloc(prog: &mut Program) -> Option<()> {
    let (var, size, align) = find_alloc(prog)?;
    // Refuse when a dealloc already exists somewhere.
    let mut already = false;
    for_each_stmt(prog, |s, _| {
        let mut v = None;
        if stmt_deallocs_var(s, &mut v) {
            already = true;
        }
    });
    if already {
        return None;
    }
    let main = main_body(prog)?;
    main.stmts
        .push(Stmt::Unsafe(Block::new(vec![Stmt::Expr(Expr::Builtin(
            BuiltinKind::Dealloc,
            Vec::new(),
            vec![Expr::Var(var), size, align],
        ))])));
    Some(())
}

/// Splice the first scope containing a raw-pointer escape into its parent.
fn hoist_local_out(prog: &mut Program) -> Option<()> {
    let main = main_body(prog)?;
    let mut idx = None;
    for (i, s) in main.stmts.iter().enumerate() {
        if let Stmt::Scope(body) = s {
            let escapes = body
                .stmts
                .iter()
                .any(|inner| stmt_contains(inner, &mut |e| matches!(e, Expr::RawAddrOf(..))));
            if escapes {
                idx = Some(i);
                break;
            }
        }
    }
    let i = idx?;
    let Stmt::Scope(body) = main.stmts.remove(i) else {
        return None;
    };
    for (k, inner) in body.stmts.into_iter().enumerate() {
        main.stmts.insert(i + k, inner);
    }
    Some(())
}

/// Move the premature `dealloc` statement to the end of `main`.
fn reorder_dealloc(prog: &mut Program, err: &MiriError) -> Option<()> {
    // Plausible whenever memory errors and a dealloc coexist; only actually
    // fixes use-after-free orderings.
    if !err.kind.is_ub() {
        return None;
    }
    let main = main_body(prog)?;
    let mut idx = None;
    for (i, s) in main.stmts.iter().enumerate() {
        let mut v = None;
        if stmt_deallocs_var(s, &mut v) {
            idx = Some(i);
            break;
        }
    }
    let i = idx?;
    if i + 1 >= main.stmts.len() {
        return None; // already last
    }
    let dealloc = main.stmts.remove(i);
    main.stmts.push(dealloc);
    Some(())
}

/// Snap a `ptr_offset` literal: `up == false` → 0; `up == true` → round up
/// to 4 (the common read alignment).
fn align_offset(prog: &mut Program, err: &MiriError, up: bool) -> Option<()> {
    if !matches!(
        err.kind,
        UbKind::OutOfBounds
            | UbKind::UnalignedAccess
            | UbKind::UseAfterFree
            | UbKind::UninitRead
            | UbKind::CrossAllocation
    ) {
        return None;
    }
    let path = err_path(err)?.clone();
    let mut changed = false;
    rewrite_stmt_at(prog, &path, &mut |e| {
        if let Expr::Builtin(BuiltinKind::PtrOffset, _, args) = e {
            if let Expr::Lit(Lit::Int(v, t)) = &args[1] {
                let new = if up {
                    ((*v as i64 + 3) / 4 * 4).max(4)
                } else {
                    0
                };
                if new != *v as i64 {
                    args[1] = int_lit(new, *t);
                    changed = true;
                }
            }
        }
    });
    changed.then_some(())
}

/// Move the initialising `ptr_write` before the faulting read.
fn initialize_before_read(prog: &mut Program, err: &MiriError) -> Option<()> {
    if !matches!(
        err.kind,
        UbKind::UninitRead
            | UbKind::Precondition
            | UbKind::UseAfterFree
            | UbKind::UseAfterScope
            | UbKind::InvalidValue
    ) {
        return None;
    }
    let read_idx = err_path(err)?.steps.first()?.0;
    let main = main_body(prog)?;
    // Find a later statement containing ptr_write to move before the read.
    let mut write_idx = None;
    for (i, s) in main.stmts.iter().enumerate().skip(read_idx + 1) {
        let mut has_write = false;
        deep_exprs(s, &mut |top| {
            walk_expr(top, &mut |e| {
                if matches!(e, Expr::Builtin(BuiltinKind::PtrWrite, ..)) {
                    has_write = true;
                }
            });
        });
        if has_write {
            write_idx = Some(i);
            break;
        }
    }
    let wi = write_idx?;
    // If the write statement also deallocs, split would be wrong; only move
    // a pure-write unsafe block, else extract the write.
    let stmt = main.stmts.remove(wi);
    match stmt {
        Stmt::Unsafe(mut body) => {
            let mut writes = Vec::new();
            let mut rest = Vec::new();
            for s in std::mem::take(&mut body.stmts) {
                let mut has_write = false;
                deep_exprs(&s, &mut |top| {
                    walk_expr(top, &mut |e| {
                        if matches!(e, Expr::Builtin(BuiltinKind::PtrWrite, ..)) {
                            has_write = true;
                        }
                    });
                });
                if has_write {
                    writes.push(s);
                } else {
                    rest.push(s);
                }
            }
            if !rest.is_empty() {
                main.stmts.insert(wi, Stmt::Unsafe(Block::new(rest)));
            }
            main.stmts
                .insert(read_idx, Stmt::Unsafe(Block::new(writes)));
            Some(())
        }
        other => {
            main.stmts.insert(read_idx, other);
            Some(())
        }
    }
}

/// Rewrite `U { small: v u8 }` so the field actually read is initialised.
fn union_largest_field(prog: &mut Program) -> Option<()> {
    // Which field is read?
    let mut read_field: Option<String> = None;
    for_each_stmt(prog, |s, _| {
        for_each_expr_in_stmt(s, |top| {
            walk_expr(top, &mut |e| {
                if let Expr::UnionField(_, f) = e {
                    read_field = Some(f.clone());
                }
            });
        });
    });
    let field = read_field?;
    // The union's field type, for the literal re-typing.
    let unions = prog.unions.clone();
    let mut changed = false;
    rb_lang::visit::map_exprs(prog, &mut |e| {
        if let Expr::UnionLit(u, f, v) = e {
            if *f != field {
                if let Some(def) = unions.iter().find(|d| d.name == *u) {
                    if let Some((_, fty)) = def.fields.iter().find(|(n, _)| *n == field) {
                        if let (Expr::Lit(Lit::Int(val, _)), Ty::Int(t)) = (&**v, fty) {
                            *e = Expr::UnionLit(
                                u.clone(),
                                field.clone(),
                                Box::new(Expr::Lit(Lit::Int(*val, *t))),
                            );
                            changed = true;
                        }
                    }
                }
            }
        }
    });
    changed.then_some(())
}

/// Inside the faulting block, move a raw-pointer `let` after the write that
/// invalidates it.
fn retake_pointer(prog: &mut Program, err: &MiriError) -> Option<()> {
    if !matches!(err.kind, UbKind::StackBorrowViolation) {
        return None;
    }
    let path = err_path(err)?.clone();
    let Some(Stmt::Unsafe(body)) = rb_lang::visit::get_stmt_mut(prog, &path) else {
        return None;
    };
    // Pattern: [.., let p = &raw _ / &_, assign to var, ..] -> swap, so the
    // pointer/reference is taken *after* the conflicting write.
    let mut let_idx = None;
    for (i, s) in body.stmts.iter().enumerate() {
        if let Stmt::Let {
            init: Expr::RawAddrOf(..) | Expr::AddrOf(..),
            ..
        } = s
        {
            if matches!(body.stmts.get(i + 1), Some(Stmt::Assign { .. })) {
                let_idx = Some(i);
                break;
            }
        }
    }
    let i = let_idx?;
    body.stmts.swap(i, i + 1);
    Some(())
}

/// Remove the second of two `&mut` reborrows and redirect its uses.
fn single_mut_borrow(prog: &mut Program) -> Option<()> {
    // Find two let-bindings of `&mut same-var`.
    let mut first: Option<(String, String)> = None; // (name, target)
    let mut second: Option<(String, StmtPath)> = None;
    for_each_stmt(prog, |s, p| {
        if let Stmt::Let {
            name,
            init: Expr::AddrOf(Mutability::Mut, t),
            ..
        } = s
        {
            if let Expr::Var(target) = &**t {
                match &first {
                    None => first = Some((name.clone(), target.clone())),
                    Some((_, ft)) if ft == target && second.is_none() => {
                        second = Some((name.clone(), p.clone()));
                    }
                    _ => {}
                }
            }
        }
    });
    let (first_name, _) = first?;
    let (second_name, second_path) = second?;
    rb_lang::visit::remove_stmt(prog, &second_path)?;
    rb_lang::visit::map_exprs(prog, &mut |e| {
        if matches!(e, Expr::Var(n) if *n == second_name) {
            *e = Expr::Var(first_name.clone());
        }
    });
    Some(())
}

/// Move a main-thread statement that races with spawned threads after the
/// `join`.
fn move_read_after_join(prog: &mut Program) -> Option<()> {
    let main = main_body(prog)?;
    let join_idx = main.stmts.iter().position(|s| matches!(s, Stmt::JoinAll))?;
    // A statement between the first spawn and the join that touches a static.
    let spawn_idx = main
        .stmts
        .iter()
        .position(|s| matches!(s, Stmt::Spawn(_)))?;
    let mut victim = None;
    for (i, s) in main
        .stmts
        .iter()
        .enumerate()
        .take(join_idx)
        .skip(spawn_idx + 1)
    {
        if matches!(s, Stmt::Spawn(_)) {
            continue;
        }
        if stmt_contains(s, &mut |e| matches!(e, Expr::StaticRef(_))) {
            victim = Some(i);
            break;
        }
    }
    let i = victim?;
    let stmt = main.stmts.remove(i);
    // join_idx shifted left by one.
    main.stmts.insert(join_idx, stmt);
    Some(())
}

/// Turn `tailcall f(args)` into a plain call (+ return of the first param
/// when the callee returns unit but the caller does not).
fn tailcall_to_return(prog: &mut Program) -> Option<()> {
    let mut target: Option<(StmtPath, String, Vec<Expr>)> = None;
    for_each_stmt(prog, |s, p| {
        if target.is_none() {
            if let Stmt::TailCall(name, args) = s {
                target = Some((p.clone(), name.clone(), args.clone()));
            }
        }
    });
    let (path, name, args) = target?;
    let callee_ret = prog.func(&name)?.ret.clone();
    let caller = prog.funcs.get(path.func)?;
    let caller_ret = caller.ret.clone();
    let first_param = caller.params.first().map(|(n, _)| n.clone());
    if callee_ret == caller_ret {
        rb_lang::visit::replace_stmt(prog, &path, Stmt::Return(Some(Expr::Call(name, args))))
            .then_some(())
    } else if callee_ret == Ty::Unit {
        let ret_val = first_param.map_or(Expr::i32(0), Expr::var0);
        let ok1 = rb_lang::visit::replace_stmt(prog, &path, Stmt::Expr(Expr::Call(name, args)));
        let ok2 = rb_lang::visit::insert_after(prog, &path, Stmt::Return(Some(ret_val)));
        (ok1 && ok2).then_some(())
    } else {
        None
    }
}

trait VarExt {
    fn var0(name: String) -> Expr;
}
impl VarExt for Expr {
    fn var0(name: String) -> Expr {
        Expr::Var(name)
    }
}

/// Fix an out-of-bounds index literal to `len - 1`.
fn fix_literal_index(prog: &mut Program, err: &MiriError) -> Option<()> {
    if err.kind != UbKind::PanicIndex {
        return None;
    }
    // Array length from any `let arr: [T; N]`.
    let mut len = 0usize;
    for_each_stmt(prog, |s, _| {
        if let Stmt::Let {
            ty: Ty::Array(_, n),
            ..
        } = s
        {
            len = *n;
        }
    });
    if len == 0 {
        return None;
    }
    // Fix the literal in the index-variable definition.
    let mut changed = false;
    rb_lang::visit::map_exprs(prog, &mut |_| {});
    for f in &mut prog.funcs {
        for s in &mut f.body.stmts {
            if let Stmt::Let {
                name,
                init: Expr::Lit(Lit::Int(v, t)),
                ..
            } = s
            {
                if (name.contains("idx") || name.contains("i")) && *v >= len as i128 {
                    *s = Stmt::Let {
                        name: name.clone(),
                        ty: Ty::Int(*t),
                        init: int_lit(len as i64 - 1, *t),
                    };
                    changed = true;
                }
            }
        }
    }
    changed.then_some(())
}

/// Push the `copy_nonoverlapping` destination past the source range.
fn copy_without_overlap(prog: &mut Program) -> Option<()> {
    let mut changed = false;
    rb_lang::visit::map_exprs(prog, &mut |e| {
        if let Expr::Builtin(BuiltinKind::CopyNonoverlapping, _, args) = e {
            let count = match &args[2] {
                Expr::Lit(Lit::Int(n, _)) => *n as i64,
                _ => return,
            };
            if let Expr::Builtin(BuiltinKind::PtrOffset, _, off_args) = &mut args[1] {
                if let Expr::Lit(Lit::Int(v, t)) = &off_args[1] {
                    if (*v as i64) < count {
                        off_args[1] = int_lit(count, *t);
                        changed = true;
                    }
                }
            }
        }
    });
    changed.then_some(())
}

// ---- hallucination -------------------------------------------------------------

fn delete_statement(prog: &mut Program, err: &MiriError) -> Option<()> {
    let path = err_path(err)?.clone();
    rb_lang::visit::remove_stmt(prog, &path).map(|_| ())
}

fn duplicate_statement(prog: &mut Program, err: &MiriError) -> Option<()> {
    let path = err_path(err)?.clone();
    let stmt = get_stmt(prog, &path).cloned()?;
    rb_lang::visit::insert_after(prog, &path, stmt).then_some(())
}

fn perturb_literal(prog: &mut Program, err: &MiriError) -> Option<()> {
    let path = err_path(err)?.clone();
    let mut done = false;
    rewrite_stmt_at(prog, &path, &mut |e| {
        if done {
            return;
        }
        if let Expr::Lit(Lit::Int(v, t)) = e {
            *e = Expr::Lit(Lit::Int(t.wrap(*v + 1), *t));
            done = true;
        }
    });
    done.then_some(())
}

/// Unwrap the first `unsafe` block in `main`, exposing unsafe operations
/// in a safe context — the classic non-compiling LLM patch.
fn strip_unsafe(prog: &mut Program) -> Option<()> {
    let main = main_body(prog)?;
    let idx = main
        .stmts
        .iter()
        .position(|s| matches!(s, Stmt::Unsafe(_)))?;
    let Stmt::Unsafe(body) = main.stmts.remove(idx) else {
        return None;
    };
    if body.stmts.is_empty() {
        return None;
    }
    for (k, inner) in body.stmts.into_iter().enumerate() {
        main.stmts.insert(idx + k, inner);
    }
    Some(())
}

/// Rename the first let binding in `main` at its definition only, leaving
/// its uses dangling.
fn break_binding(prog: &mut Program) -> Option<()> {
    let main = main_body(prog)?;
    for s in &mut main.stmts {
        if let Stmt::Let { name, .. } = s {
            name.push_str("_renamed");
            return Some(());
        }
    }
    None
}

/// Flip the declared type of the first integer let in `main`.
fn break_types(prog: &mut Program) -> Option<()> {
    let main = main_body(prog)?;
    for s in &mut main.stmts {
        if let Stmt::Let { ty, .. } = s {
            if matches!(ty, Ty::Int(IntTy::I32)) {
                *ty = Ty::Bool;
                return Some(());
            }
        }
    }
    None
}

fn disable_statement(prog: &mut Program, err: &MiriError) -> Option<()> {
    let path = err_path(err)?.clone();
    let stmt = get_stmt(prog, &path).cloned()?;
    let disabled = Stmt::If {
        cond: Expr::Lit(Lit::Bool(false)),
        then_blk: Block::new(vec![stmt]),
        else_blk: None,
    };
    rb_lang::visit::replace_stmt(prog, &path, disabled).then_some(())
}

// Small helper used by several rules above; kept at the bottom to avoid
// cluttering the rule bodies.
#[allow(dead_code)]
fn err_ref(err: &MiriError) -> &MiriError {
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_miri::run_program;

    fn first_error(prog: &Program) -> MiriError {
        run_program(prog)
            .errors
            .first()
            .cloned()
            .expect("buggy program must fail")
    }

    fn parse(src: &str) -> Program {
        rb_lang::parser::parse_program(src).unwrap()
    }

    #[test]
    fn rule_kinds_partition() {
        for r in RepairRule::ALL {
            let _ = r.kind();
            assert!(!r.name().is_empty());
        }
        for h in RepairRule::HALLUCINATIONS {
            assert_eq!(h.kind(), RuleKind::Hallucination);
        }
    }

    #[test]
    fn remove_double_free_fixes() {
        let p = parse(
            "fn main() { let p: *mut u8 = 0 as *mut u8; \
             unsafe { p = alloc(4usize, 4usize); ptr_write::<i32>(p as *mut i32, 3i32); } \
             unsafe { print(ptr_read::<i32>(p as *const i32)); } \
             unsafe { dealloc(p, 4usize, 4usize); } \
             unsafe { dealloc(p, 4usize, 4usize); } }",
        );
        let err = first_error(&p);
        assert_eq!(err.kind, UbKind::DoubleFree);
        let fixed = RepairRule::RemoveDoubleFree
            .apply(&p, &err)
            .expect("applies");
        assert!(
            run_program(&fixed).passes(),
            "{:?}",
            run_program(&fixed).errors
        );
    }

    #[test]
    fn bool_from_comparison_fixes() {
        let p = parse(
            "fn main() { let x: u8 = 5u8; \
             unsafe { let flag: bool = transmute::<u8, bool>(x); print(flag); } }",
        );
        let err = first_error(&p);
        let fixed = RepairRule::BoolFromComparison
            .apply(&p, &err)
            .expect("applies");
        let r = run_program(&fixed);
        assert!(r.passes(), "{:?}", r.errors);
        assert_eq!(r.outputs, vec!["true"]);
    }

    #[test]
    fn from_le_bytes_fixes() {
        let p = parse(
            "fn main() { let n1: [u8; 2] = [23u8, 7u8]; \
             unsafe { let n2: u32 = transmute::<[u8; 2], u32>(n1); print(n2); } }",
        );
        let err = first_error(&p);
        let fixed = RepairRule::TransmuteBytesToFromLe
            .apply(&p, &err)
            .expect("applies");
        let r = run_program(&fixed);
        assert!(r.passes(), "{:?}", r.errors);
        assert_eq!(r.outputs, vec![format!("{}", 23 + 7 * 256)]);
    }

    #[test]
    fn use_direct_pointer_fixes_provenance() {
        let p = parse(
            "fn main() { let val: i32 = 9; let p: *const i32 = &raw const val; \
             let addr: usize = p as usize; \
             let q: *const i32 = addr as *const i32; \
             unsafe { print(*q); } }",
        );
        let err = first_error(&p);
        assert_eq!(err.kind, UbKind::NoProvenance);
        let fixed = RepairRule::UseDirectPointer
            .apply(&p, &err)
            .expect("applies");
        let r = run_program(&fixed);
        assert!(r.passes(), "{:?}", r.errors);
        assert_eq!(r.outputs, vec!["9"]);
    }

    #[test]
    fn lock_spawn_bodies_fixes_race() {
        let p = parse(
            "static mut G: i32 = 0; fn main() { \
             spawn { unsafe { G = 1; } } spawn { unsafe { G = 2; } } \
             join; unsafe { print(G); } }",
        );
        let err = first_error(&p);
        let fixed = RepairRule::LockSpawnBodies
            .apply(&p, &err)
            .expect("applies");
        let r = run_program(&fixed);
        assert!(r.passes(), "{:?}", r.errors);
    }

    #[test]
    fn use_atomics_fixes_increment_race() {
        let p = parse(
            "static mut C: i32 = 0; fn main() { \
             spawn { unsafe { C = C + 1; } } spawn { unsafe { C = C + 1; } } \
             join; unsafe { print(C); } }",
        );
        let err = first_error(&p);
        let fixed = RepairRule::UseAtomics.apply(&p, &err).expect("applies");
        let r = run_program(&fixed);
        assert!(r.passes(), "{:?}", r.errors);
        assert_eq!(r.outputs, vec!["2"]);
    }

    #[test]
    fn hoist_local_out_fixes_dangling() {
        let p = parse(
            "fn main() { let q: *const i32 = 0 as *const i32; \
             { let x: i32 = 5; q = &raw const x; } \
             unsafe { print(*q); } }",
        );
        let err = first_error(&p);
        let fixed = RepairRule::HoistLocalOut.apply(&p, &err).expect("applies");
        let r = run_program(&fixed);
        assert!(r.passes(), "{:?}", r.errors);
        assert_eq!(r.outputs, vec!["5"]);
    }

    #[test]
    fn reorder_dealloc_fixes_uaf() {
        let p = parse(
            "fn main() { let p: *mut u8 = 0 as *mut u8; \
             unsafe { p = alloc(4usize, 4usize); ptr_write::<i32>(p as *mut i32, 7i32); } \
             unsafe { dealloc(p, 4usize, 4usize); } \
             unsafe { print(ptr_read::<i32>(p as *const i32)); } }",
        );
        let err = first_error(&p);
        assert_eq!(err.kind, UbKind::UseAfterFree);
        let fixed = RepairRule::ReorderDeallocAfterUse
            .apply(&p, &err)
            .expect("applies");
        let r = run_program(&fixed);
        assert!(r.passes(), "{:?}", r.errors);
        assert_eq!(r.outputs, vec!["7"]);
    }

    #[test]
    fn widen_arithmetic_fixes_overflow() {
        let p = parse(
            "fn main() { let x: i32 = 2147483647; let d: i32 = 5; \
             unsafe { print(unchecked_add::<i32>(x, d)); } }",
        );
        let err = first_error(&p);
        let fixed = RepairRule::WidenArithmetic
            .apply(&p, &err)
            .expect("applies");
        let r = run_program(&fixed);
        assert!(r.passes(), "{:?}", r.errors);
        assert_eq!(r.outputs, vec!["2147483652"]);
    }

    #[test]
    fn guard_division_fixes_panic() {
        let p = parse("fn main() { let d: i32 = 0; let n: i32 = 8; print(n / d); }");
        let err = first_error(&p);
        let fixed = RepairRule::GuardDivision.apply(&p, &err).expect("applies");
        let r = run_program(&fixed);
        assert!(r.passes(), "{:?}", r.errors);
        assert_eq!(r.outputs, vec!["0"]);
    }

    #[test]
    fn single_mut_borrow_fixes_bothborrow() {
        let p = parse(
            "fn main() { let v: i32 = 1; unsafe { \
             let first: &mut i32 = &mut v; \
             let second: &mut i32 = &mut v; \
             *second = 9; print(*first); } }",
        );
        let err = first_error(&p);
        let fixed = RepairRule::SingleMutBorrow
            .apply(&p, &err)
            .expect("applies");
        let r = run_program(&fixed);
        assert!(r.passes(), "{:?}", r.errors);
        assert_eq!(r.outputs, vec!["9"]);
    }

    #[test]
    fn tailcall_to_return_fixes() {
        let p = parse(
            "fn helper(x: i32, y: i32) -> i32 { return x + y; } \
             fn runner(x: i32) -> i32 { tailcall helper(x, 4); } \
             fn main() { print(runner(3)); }",
        );
        let err = first_error(&p);
        let fixed = RepairRule::ReplaceTailCallWithReturn
            .apply(&p, &err)
            .expect("applies");
        let r = run_program(&fixed);
        assert!(r.passes(), "{:?}", r.errors);
        assert_eq!(r.outputs, vec!["7"]);
    }

    #[test]
    fn hallucinations_apply_but_rarely_fix() {
        let p = parse("fn main() { let d: i32 = 0; let n: i32 = 8; print(n / d); }");
        let err = first_error(&p);
        // Deleting the faulting statement "fixes" Miri but changes meaning.
        let deleted = RepairRule::DeleteStatement
            .apply(&p, &err)
            .expect("applies");
        let r = run_program(&deleted);
        assert!(r.passes());
        assert!(r.outputs.is_empty()); // outputs lost: semantically bad
    }

    #[test]
    fn candidates_nonempty_for_common_errors() {
        let p = parse(
            "fn main() { let p: *mut u8 = 0 as *mut u8; \
             unsafe { p = alloc(4usize, 4usize); ptr_write::<i32>(p as *mut i32, 3i32); } \
             unsafe { print(ptr_read::<i32>(p as *const i32)); } \
             unsafe { dealloc(p, 4usize, 4usize); } \
             unsafe { dealloc(p, 4usize, 4usize); } }",
        );
        let err = first_error(&p);
        let cands = RepairRule::candidates(&p, &err);
        assert!(cands.contains(&RepairRule::RemoveDoubleFree), "{cands:?}");
    }
}
