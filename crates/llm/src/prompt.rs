//! Prompt representation: the three agent prompt strategies of the paper's
//! Fig. 4, the repair context handed to a model, and knowledge-base
//! few-shots.

use crate::rules::{RepairRule, RuleKind};
use rb_lang::printer::print_program;
use rb_lang::Program;
use rb_miri::MiriError;
use serde::{Deserialize, Serialize};

/// The prompt strategy an agent uses (paper Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PromptStrategy {
    /// "Find Safe API with same functionality for replacement."
    SafeReplace,
    /// "Pre-assertion added before UB is possible, prevent it."
    Assert,
    /// "Keep functionality and semantics, avoid UBs by modification."
    Modify,
    /// Unconstrained single-shot repair (standalone-model baseline).
    Freeform,
}

impl PromptStrategy {
    /// The rule family this strategy targets (`None` for freeform).
    #[must_use]
    pub fn target_kind(self) -> Option<RuleKind> {
        match self {
            PromptStrategy::SafeReplace => Some(RuleKind::SafeReplace),
            PromptStrategy::Assert => Some(RuleKind::Assert),
            PromptStrategy::Modify => Some(RuleKind::Modify),
            PromptStrategy::Freeform => None,
        }
    }

    /// Instruction text injected into the rendered prompt.
    #[must_use]
    pub fn instruction(self) -> &'static str {
        match self {
            PromptStrategy::SafeReplace => {
                "Find a safe API with the same functionality and replace the unsafe operation."
            }
            PromptStrategy::Assert => {
                "Add a pre-assertion or guard before the undefined behaviour can occur."
            }
            PromptStrategy::Modify => {
                "Keep functionality and semantics; avoid the UB by modifying the erroneous logic."
            }
            PromptStrategy::Freeform => "Fix the undefined behaviour in this Rust code.",
        }
    }
}

/// A retrieved knowledge-base example attached to a prompt.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FewShot {
    /// The rule that solved the similar case.
    pub rule: RepairRule,
    /// Cosine similarity of the pruned ASTs.
    pub similarity: f64,
}

/// Everything a model sees for one repair request.
#[derive(Clone, Debug)]
pub struct RepairContext<'p> {
    /// The current program.
    pub program: &'p Program,
    /// The primary diagnostic being repaired.
    pub error: &'p MiriError,
    /// Agent prompt strategy.
    pub strategy: PromptStrategy,
    /// Retrieved knowledge examples.
    pub shots: Vec<FewShot>,
}

impl<'p> RepairContext<'p> {
    /// Builds a context with no shots.
    #[must_use]
    pub fn new(program: &'p Program, error: &'p MiriError, strategy: PromptStrategy) -> Self {
        RepairContext {
            program,
            error,
            strategy,
            shots: Vec::new(),
        }
    }

    /// Renders the textual prompt (what a real API call would send); used
    /// for token accounting and latency modelling.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("You are repairing undefined behaviour in Rust code.\n");
        out.push_str("Root cause: ");
        out.push_str(&self.error.to_string());
        out.push('\n');
        out.push_str(self.strategy.instruction());
        out.push('\n');
        for shot in &self.shots {
            out.push_str(&format!(
                "Similar case (sim {:.2}) was fixed by `{}`.\n",
                shot.similarity,
                shot.rule.name()
            ));
        }
        out.push_str("```rust\n");
        out.push_str(&print_program(self.program));
        out.push_str("```\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lang::parser::parse_program;
    use rb_miri::run_program;

    #[test]
    fn strategies_map_to_kinds() {
        assert_eq!(
            PromptStrategy::SafeReplace.target_kind(),
            Some(RuleKind::SafeReplace)
        );
        assert_eq!(PromptStrategy::Assert.target_kind(), Some(RuleKind::Assert));
        assert_eq!(PromptStrategy::Modify.target_kind(), Some(RuleKind::Modify));
        assert_eq!(PromptStrategy::Freeform.target_kind(), None);
    }

    #[test]
    fn render_contains_code_and_error() {
        let p = parse_program("fn main() { let z: i32 = 0; print(5 / z); }").unwrap();
        let r = run_program(&p);
        let err = r.errors.first().unwrap();
        let ctx = RepairContext::new(&p, err, PromptStrategy::Modify);
        let text = ctx.render();
        assert!(text.contains("panic"));
        assert!(text.contains("fn main"));
        assert!(text.contains("modifying the erroneous logic"));
    }

    #[test]
    fn shots_appear_in_prompt() {
        let p = parse_program("fn main() { let z: i32 = 0; print(5 / z); }").unwrap();
        let r = run_program(&p);
        let err = r.errors.first().unwrap();
        let mut ctx = RepairContext::new(&p, err, PromptStrategy::Freeform);
        ctx.shots.push(FewShot {
            rule: RepairRule::GuardDivision,
            similarity: 0.93,
        });
        assert!(ctx.render().contains("guard-division"));
    }
}
