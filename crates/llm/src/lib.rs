//! # rb-llm — deterministic simulated language models
//!
//! This crate substitutes for the GPT-3.5 / GPT-4 / GPT-O1 / Claude-3.5
//! APIs the paper drives: a [`SimulatedModel`] is a seeded stochastic
//! proposal engine over the [`rules`] repair library. Each
//! [`profile::ModelProfile`] fixes per-UB-class repair skill, semantic
//! understanding, hallucination rate, latency distribution and token limit,
//! calibrated so standalone-model repair rates land in the band the paper
//! reports — while every *mechanism* the paper evaluates (solution
//! diversity, temperature sensitivity, hallucination-induced error growth,
//! few-shot boosting from the knowledge base) emerges from the proposal
//! distribution itself.
//!
//! ```
//! use rb_llm::{LanguageModel, ModelId, SimulatedModel};
//! let model = SimulatedModel::new(ModelId::Gpt4, 0.5, 42);
//! assert_eq!(model.id().label(), "GPT-4");
//! ```

#![warn(missing_docs)]

pub mod latency;
pub mod model;
pub mod profile;
pub mod prompt;
pub mod rules;
pub mod tokens;

pub use model::{LanguageModel, ModelCallStats, Proposal, SimulatedModel};
pub use profile::{ModelId, ModelProfile};
pub use prompt::{FewShot, PromptStrategy, RepairContext};
pub use rules::{RepairRule, RuleKind};
