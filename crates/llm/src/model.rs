//! The simulated language model: a seeded stochastic proposal engine over
//! the repair-rule library.
//!
//! Given a [`RepairContext`], the model scores every applicable rule by
//! (class skill) × (prompt-strategy match) × (intrinsic family preference),
//! perturbs scores with temperature-scaled noise, optionally injects a
//! hallucinated edit, and returns a ranked proposal list. Whether a
//! proposal actually fixes the program is decided downstream by the oracle
//! — the model only *proposes*, as a real LLM does.

use crate::latency::sample_latency_ms;
use crate::profile::{ModelId, ModelProfile};
use crate::prompt::RepairContext;
use crate::rules::RepairRule;
use crate::tokens::count_tokens;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// Deterministic hash of a string into `[0, 1)`. Uses an FNV-1a style fold
/// so the mapping is stable across platforms and compilations.
fn hash01(text: &str) -> f64 {
    let mut h = Fnv1a::default();
    text.hash(&mut h);
    (h.finish() % 1_000_000) as f64 / 1_000_000.0
}

#[derive(Default)]
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut state = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for b in bytes {
            state ^= u64::from(*b);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = state;
    }
}

/// One ranked repair proposal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Proposal {
    /// The proposed rule.
    pub rule: RepairRule,
    /// The model's (noisy) confidence score.
    pub score: f64,
}

/// Aggregate statistics over a model's lifetime.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelCallStats {
    /// Number of propose calls.
    pub calls: u64,
    /// Total simulated latency in milliseconds.
    pub total_latency_ms: f64,
    /// Total prompt tokens consumed.
    pub total_tokens: u64,
    /// Calls rejected because the prompt exceeded the context window.
    pub truncated_calls: u64,
}

/// Response of one model call.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelResponse {
    /// Ranked proposals (best first). Empty when the model had nothing.
    pub proposals: Vec<Proposal>,
    /// Whether the prompt had to be truncated (degrades quality).
    pub truncated: bool,
    /// Simulated latency of this call.
    pub latency_ms: f64,
    /// Prompt tokens.
    pub tokens: usize,
    /// Semantic drift: the patch carries a sloppy value change; the caller
    /// must additionally apply [`crate::rules::apply_semantic_drift`] to
    /// the edited program.
    pub drift: bool,
}

/// Abstraction over proposal engines, so the pipeline can be driven by
/// other models (or a scripted stub in tests).
pub trait LanguageModel {
    /// The identity of the model.
    fn id(&self) -> ModelId;
    /// Current sampling temperature.
    fn temperature(&self) -> f64;
    /// Produces ranked repair proposals for a context.
    fn propose(&mut self, ctx: &RepairContext<'_>) -> ModelResponse;
    /// Lifetime statistics.
    fn stats(&self) -> &ModelCallStats;
}

/// The deterministic simulated model.
#[derive(Clone, Debug)]
pub struct SimulatedModel {
    profile: ModelProfile,
    temperature: f64,
    rng: ChaCha8Rng,
    stats: ModelCallStats,
}

impl SimulatedModel {
    /// Creates a model with the given sampling temperature and seed.
    #[must_use]
    pub fn new(id: ModelId, temperature: f64, seed: u64) -> SimulatedModel {
        SimulatedModel {
            profile: id.profile(),
            temperature,
            rng: ChaCha8Rng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9)),
            stats: ModelCallStats::default(),
        }
    }

    /// The model's profile.
    #[must_use]
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Gaussian-ish noise via the sum of three uniforms (Irwin–Hall),
    /// scaled by temperature and the profile's noise scale.
    fn noise(&mut self) -> f64 {
        let u: f64 = self.rng.gen::<f64>() + self.rng.gen::<f64>() + self.rng.gen::<f64>();
        (u - 1.5) * self.temperature * self.profile.noise_scale
    }
}

impl LanguageModel for SimulatedModel {
    fn id(&self) -> ModelId {
        self.profile.id
    }

    fn temperature(&self) -> f64 {
        self.temperature
    }

    fn propose(&mut self, ctx: &RepairContext<'_>) -> ModelResponse {
        let prompt = ctx.render();
        let tokens = count_tokens(&prompt);
        let latency = sample_latency_ms(
            &mut self.rng,
            self.profile.latency_base_ms,
            self.profile.latency_per_token_ms,
            tokens.min(self.profile.token_limit),
        );
        self.stats.calls += 1;
        self.stats.total_latency_ms += latency;
        self.stats.total_tokens += tokens as u64;

        let truncated = tokens > self.profile.token_limit;
        if truncated {
            // The paper scopes out over-limit inputs; the model degrades to
            // a single blind guess.
            self.stats.truncated_calls += 1;
        }

        let class = ctx.error.class();
        let class_skill = self.profile.class_skill(class);
        let src = rb_lang::printer::print_program(ctx.program);
        let best_shot = ctx
            .shots
            .iter()
            .map(|s| s.similarity)
            .fold(0.0f64, f64::max);
        // Understanding decomposes into two stable draws:
        //
        // 1. a *problem-level* gate — some problems are simply beyond the
        //    model no matter how it is prompted; only grounding it with a
        //    retrieved similar solved case (knowledge shots) raises this
        //    ceiling;
        // 2. a *prompt-level* gate — re-asking with the same prompt rarely
        //    helps, but a different agent strategy is a genuinely new
        //    chance.
        //
        // This is the premise behind RustBrain's design: diverse solutions
        // and the knowledge base attack exactly these two gates.
        let problem_skill = ((class_skill * 1.25).min(0.97) + 0.35 * best_shot).min(0.985);
        let u_problem = hash01(&format!("{src}|{:?}|problem", self.profile.id));
        let targeted_bonus = if ctx.strategy.target_kind().is_some() {
            0.10
        } else {
            0.0
        };
        let prompt_skill = 0.75 + targeted_bonus + (self.rng.gen::<f64>() - 0.5) * 0.12;
        let u_prompt = hash01(&prompt);
        let understands = u_problem <= problem_skill && u_prompt <= prompt_skill;
        let candidates = RepairRule::candidates(ctx.program, ctx.error);

        let mut proposals: Vec<Proposal> = candidates
            .into_iter()
            .map(|rule| {
                let mut score = class_skill * self.profile.kind_preference(rule.kind());
                // A skilled model recognises the rule whose home turf is
                // exactly this diagnostic.
                if rule.addresses(ctx.error.kind) {
                    score *= 1.0 + 0.8 * self.profile.semantic_skill;
                }
                // Strategy match: targeted agents steer toward their family.
                if let Some(target) = ctx.strategy.target_kind() {
                    score *= if rule.kind() == target { 1.45 } else { 0.6 };
                }
                // Knowledge shots strongly bias toward the retrieved rule.
                for shot in &ctx.shots {
                    if shot.rule == rule {
                        score *= 1.0 + shot.similarity;
                    }
                }
                if truncated {
                    score *= 0.3;
                }
                score += self.noise();
                Proposal { rule, score }
            })
            .collect();

        // Skill gate: a model that does not understand the problem yields
        // either nothing usable or one arbitrary pick — the way a real
        // model either punts or confidently emits one wrong patch.
        if !understands {
            let roll = self.rng.gen::<f64>();
            if proposals.is_empty() || roll < 0.45 {
                proposals.clear();
            } else if roll < 0.75 {
                // The classic confident-but-wrong patch: make the failing
                // statement disappear (models love deleting broken code).
                let lazy = if self.rng.gen::<f64>() < 0.5 {
                    RepairRule::DeleteStatement
                } else {
                    RepairRule::DisableStatement
                };
                proposals = if lazy.apply(ctx.program, ctx.error).is_some() {
                    vec![Proposal {
                        rule: lazy,
                        score: 1.0,
                    }]
                } else {
                    Vec::new()
                };
            } else {
                let idx = self.rng.gen_range(0..proposals.len());
                let p = proposals.swap_remove(idx);
                proposals = vec![p];
            }
        }

        // Hallucination: inject a wrong edit near the top.
        let h = self
            .profile
            .effective_hallucination(self.temperature, ctx.shots.len());
        if self.rng.gen::<f64>() < h {
            let pick =
                RepairRule::HALLUCINATIONS[self.rng.gen_range(0..RepairRule::HALLUCINATIONS.len())];
            if pick.apply(ctx.program, ctx.error).is_some() {
                let top = proposals
                    .iter()
                    .map(|p| p.score)
                    .fold(f64::NEG_INFINITY, f64::max);
                proposals.push(Proposal {
                    rule: pick,
                    score: if top.is_finite() { top + 0.1 } else { 1.0 },
                });
            }
        }

        proposals.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // A real model emits one patch, occasionally an alternative.
        proposals.truncate(2);
        // Semantic drift: even a correct-looking patch may slightly change
        // values. The drift is a *sticky* per-problem property (the model
        // misreads the same constant every time); retrieved shots ground
        // the model and damp it.
        let weakness = (1.0 / self.profile.class_multiplier(class)).clamp(1.0, 3.0);
        let drift_p =
            (1.0 - self.profile.semantic_skill) * 0.6 * weakness / (1.0 + ctx.shots.len() as f64);
        let drift = hash01(&format!("{src}|{:?}|drift", self.profile.id)) < drift_p;
        ModelResponse {
            proposals,
            truncated,
            latency_ms: latency,
            tokens,
            drift,
        }
    }

    fn stats(&self) -> &ModelCallStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::{FewShot, PromptStrategy};
    use rb_lang::parser::parse_program;
    use rb_miri::run_program;

    fn double_free_fixture() -> (rb_lang::Program, rb_miri::MiriError) {
        let p = parse_program(
            "fn main() { let p: *mut u8 = 0 as *mut u8; \
             unsafe { p = alloc(4usize, 4usize); ptr_write::<i32>(p as *mut i32, 3i32); } \
             unsafe { print(ptr_read::<i32>(p as *const i32)); } \
             unsafe { dealloc(p, 4usize, 4usize); } \
             unsafe { dealloc(p, 4usize, 4usize); } }",
        )
        .unwrap();
        let err = run_program(&p).errors.first().cloned().unwrap();
        (p, err)
    }

    #[test]
    fn proposals_are_deterministic_per_seed() {
        let (p, err) = double_free_fixture();
        let ctx = RepairContext::new(&p, &err, PromptStrategy::Modify);
        let mut a = SimulatedModel::new(ModelId::Gpt4, 0.5, 7);
        let mut b = SimulatedModel::new(ModelId::Gpt4, 0.5, 7);
        assert_eq!(a.propose(&ctx).proposals, b.propose(&ctx).proposals);
    }

    /// Builds N structurally-identical double-free programs differing only
    /// in the stored value, so each one rolls a fresh problem aptitude.
    fn double_free_variants(n: usize) -> Vec<(rb_lang::Program, rb_miri::MiriError)> {
        (0..n)
            .map(|i| {
                let p = parse_program(&format!(
                    "fn main() {{ let p: *mut u8 = 0 as *mut u8; \
                     unsafe {{ p = alloc(4usize, 4usize); ptr_write::<i32>(p as *mut i32, {}i32); }} \
                     unsafe {{ print(ptr_read::<i32>(p as *const i32)); }} \
                     unsafe {{ dealloc(p, 4usize, 4usize); }} \
                     unsafe {{ dealloc(p, 4usize, 4usize); }} }}",
                    i + 1
                ))
                .unwrap();
                let err = run_program(&p).errors.first().cloned().unwrap();
                (p, err)
            })
            .collect()
    }

    fn hit_rate(id: ModelId, strategy: PromptStrategy, shot: Option<FewShot>) -> usize {
        let mut model = SimulatedModel::new(id, 0.4, 13);
        double_free_variants(40)
            .iter()
            .filter(|(p, err)| {
                let mut ctx = RepairContext::new(p, err, strategy);
                if let Some(s) = &shot {
                    ctx.shots.push(s.clone());
                }
                model.propose(&ctx).proposals.first().map(|x| x.rule)
                    == Some(RepairRule::RemoveDoubleFree)
            })
            .count()
    }

    #[test]
    fn strong_model_finds_double_free() {
        let hits = hit_rate(ModelId::GptO1, PromptStrategy::Modify, None);
        assert!(hits >= 24, "only {hits}/40 top-ranked the right rule");
    }

    #[test]
    fn weak_model_less_reliable_than_strong() {
        let weak = hit_rate(ModelId::Gpt35, PromptStrategy::Freeform, None);
        let strong = hit_rate(ModelId::GptO1, PromptStrategy::Freeform, None);
        assert!(strong > weak, "strong {strong} <= weak {weak}");
    }

    #[test]
    fn shots_bias_toward_known_rule() {
        let shot = FewShot {
            rule: RepairRule::RemoveDoubleFree,
            similarity: 0.95,
        };
        let with = hit_rate(ModelId::Gpt35, PromptStrategy::Freeform, Some(shot));
        let without = hit_rate(ModelId::Gpt35, PromptStrategy::Freeform, None);
        assert!(
            with > without,
            "shots should raise the hit rate ({with} vs {without})"
        );
    }

    #[test]
    fn stats_accumulate() {
        let (p, err) = double_free_fixture();
        let ctx = RepairContext::new(&p, &err, PromptStrategy::Modify);
        let mut model = SimulatedModel::new(ModelId::Gpt4, 0.5, 3);
        model.propose(&ctx);
        model.propose(&ctx);
        assert_eq!(model.stats().calls, 2);
        assert!(model.stats().total_latency_ms > 0.0);
        assert!(model.stats().total_tokens > 0);
    }

    #[test]
    fn high_temperature_diversifies_rankings() {
        let (p, err) = double_free_fixture();
        let ctx = RepairContext::new(&p, &err, PromptStrategy::Freeform);
        let distinct = |temp: f64| {
            let mut model = SimulatedModel::new(ModelId::Gpt4, temp, 5);
            let tops: Vec<_> = (0..30)
                .filter_map(|_| model.propose(&ctx).proposals.first().map(|p| p.rule))
                .collect();
            let mut d = tops.clone();
            d.sort_unstable();
            d.dedup();
            d.len()
        };
        assert!(distinct(0.9) >= distinct(0.1));
    }
}
