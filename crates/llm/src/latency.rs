//! Deterministic latency model for simulated API calls.
//!
//! Latency = base + per-token · tokens, scaled by a seeded jitter in
//! [0.75, 1.25]. All timing in the reproduction is *simulated* milliseconds
//! accumulated from this model (Table I compares these against the paper's
//! human-expert column).

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Samples a call latency in milliseconds.
#[must_use]
pub fn sample_latency_ms(
    rng: &mut ChaCha8Rng,
    base_ms: f64,
    per_token_ms: f64,
    tokens: usize,
) -> f64 {
    let jitter = 0.75 + rng.gen::<f64>() * 0.5;
    (base_ms + per_token_ms * tokens as f64) * jitter
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn latency_within_jitter_band() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            let l = sample_latency_ms(&mut rng, 1000.0, 10.0, 100);
            assert!((1500.0..=2500.0).contains(&l), "{l}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let mut b = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(
            sample_latency_ms(&mut a, 500.0, 5.0, 10),
            sample_latency_ms(&mut b, 500.0, 5.0, 10)
        );
    }

    #[test]
    fn more_tokens_cost_more() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let mut b = ChaCha8Rng::seed_from_u64(3);
        let small = sample_latency_ms(&mut a, 500.0, 5.0, 10);
        let big = sample_latency_ms(&mut b, 500.0, 5.0, 1000);
        assert!(big > small);
    }
}
