//! Token accounting: a standard ~4-characters-per-token approximation, used
//! for context-window limits and latency modelling.

/// Approximate token count of a text (¼ of its character count, rounded
/// up — the usual BPE rule of thumb for code).
#[must_use]
pub fn count_tokens(text: &str) -> usize {
    text.chars().count().div_ceil(4)
}

/// Whether a prompt fits a model's context window.
#[must_use]
pub fn fits(text: &str, limit: usize) -> bool {
    count_tokens(text) <= limit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_chars_per_token() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("abcd"), 1);
        assert_eq!(count_tokens("abcde"), 2);
        assert_eq!(count_tokens(&"x".repeat(400)), 100);
    }

    #[test]
    fn fits_respects_limit() {
        assert!(fits("short prompt", 10));
        assert!(!fits(&"y".repeat(100), 10));
    }
}
