//! Sweeping coverage: for every dataset template family there must exist a
//! repair rule whose application produces a program that passes the oracle
//! *and* reproduces the gold outputs. This is the guarantee that no
//! figure's bar is structurally capped below 100 % — whatever the models
//! fail at is then genuinely a model/search limitation, as in the paper.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rb_dataset::{all_templates, UbCase};
use rb_llm::RepairRule;
use rb_miri::run_program;

/// The rule a competent developer (and therefore some proposal of the
/// simulated model) would use for each family.
fn canonical_rule(template: &str) -> RepairRule {
    use RepairRule::*;
    match template {
        "double_free" => RemoveDoubleFree,
        "layout_mismatch" => FixDeallocLayout,
        "leak" => AddDealloc,
        "scope_escape" => HoistLocalOut,
        "use_after_free" => ReorderDeallocAfterUse,
        "oob_offset" => AlignOffsetDown,
        "read_before_write" => InitializeBeforeRead,
        "union_tail" => UnionUseLargestField,
        "int_roundtrip" | "transmute_ref" | "addr_arith" => UseDirectPointer,
        "odd_offset" => AlignOffsetDown,
        "array_cast" => AlignOffsetUp,
        "bool_transmute" | "callee_transmute" => BoolFromComparison,
        "transmute_size" => TransmuteBytesToFromLe,
        "int_to_ref" => BorrowLocalInstead,
        "write_invalidates" | "ref_invalidated" => RetakePointerAfterWrite,
        "shared_write" => UseRawMutDirect,
        "two_mut" | "cross_fn" => SingleMutBorrow,
        "two_writers" | "heap_writers" | "reader_writer" | "helper_writer" | "three_writers" => {
            LockSpawnBodies
        }
        "increment" => UseAtomics,
        "main_read" => MoveReadAfterJoin,
        "unchecked_add" | "overflow" | "callee_unchecked" => WidenArithmetic,
        "assume_init" => InitializeBeforeRead,
        "copy_overlap" => CopyWithoutOverlap,
        "forged" => DirectFnUse,
        "wrong_sig" => FixFnPtrSignature,
        "arity" | "ret_mismatch" => ReplaceTailCallWithReturn,
        "assert_threshold" => WeakenAssert,
        "div_zero" => GuardDivision,
        "index_literal" => FixLiteralIndex,
        other => panic!("template {other} has no canonical rule"),
    }
}

#[test]
fn every_template_family_has_an_acceptable_fix() {
    for seed in [0u64, 1, 2, 3, 4] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for t in all_templates() {
            let s = (t.make)(&mut rng);
            let case = UbCase::from_sources(
                format!("{}/{}/cov{seed}", t.class.label(), t.name),
                t.class,
                t.name,
                &s.buggy,
                &s.gold,
                &s.description,
            );
            case.validate().unwrap_or_else(|e| panic!("{e}"));
            let report = run_program(&case.buggy);
            let primary = report.primary().expect("buggy has a diagnostic");
            let rule = canonical_rule(t.name);

            // The canonical rule must be applicable...
            let fixed = rule.apply(&case.buggy, primary).unwrap_or_else(|| {
                panic!(
                    "{}: canonical rule {} did not apply (error: {primary})",
                    case.id,
                    rule.name()
                )
            });
            // ...its kind must be the rule's home turf (specificity map)...
            assert!(
                rule.addresses(primary.kind),
                "{}: rule {} does not address {:?}",
                case.id,
                rule.name(),
                primary.kind
            );
            // ...and the result must pass and match the gold outputs.
            let fixed_report = run_program(&fixed);
            assert!(
                fixed_report.passes(),
                "{}: {} left errors {:?}",
                case.id,
                rule.name(),
                fixed_report.errors
            );
            assert_eq!(
                fixed_report.outputs,
                case.gold_outputs(),
                "{}: {} passes but diverges from gold semantics",
                case.id,
                rule.name()
            );
        }
    }
}

#[test]
fn canonical_rules_are_in_the_model_candidate_set() {
    // The model can only propose rules from `candidates`; the canonical
    // fix must always be in that set, or no model could ever repair the
    // family.
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    for t in all_templates() {
        let s = (t.make)(&mut rng);
        let prog = rb_lang::parser::parse_program(&s.buggy).expect("parses");
        let report = run_program(&prog);
        let primary = report.primary().expect("diagnostic");
        let cands = RepairRule::candidates(&prog, primary);
        assert!(
            cands.contains(&canonical_rule(t.name)),
            "{}: canonical rule {} missing from candidates {:?}",
            t.name,
            canonical_rule(t.name).name(),
            cands
        );
    }
}

#[test]
fn hallucination_edits_apply_broadly() {
    // Breaking edits must be applicable to most programs, otherwise the
    // hallucination model silently no-ops.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut applied = 0usize;
    let mut total = 0usize;
    for t in all_templates() {
        let s = (t.make)(&mut rng);
        let prog = rb_lang::parser::parse_program(&s.buggy).expect("parses");
        let report = run_program(&prog);
        let primary = report.primary().expect("diagnostic");
        for h in RepairRule::HALLUCINATIONS {
            total += 1;
            if h.apply(&prog, primary).is_some() {
                applied += 1;
            }
        }
    }
    assert!(
        applied as f64 / total as f64 > 0.7,
        "hallucinations applied on only {applied}/{total} attempts"
    );
}

#[test]
fn semantic_drift_changes_observable_outputs() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let mut changed = 0usize;
    let mut total = 0usize;
    for t in all_templates() {
        let s = (t.make)(&mut rng);
        let gold = rb_lang::parser::parse_program(&s.gold).expect("parses");
        if let Some(drifted) = rb_llm::rules::apply_semantic_drift(&gold) {
            total += 1;
            let before = run_program(&gold).outputs;
            let after = run_program(&drifted).outputs;
            if before != after {
                changed += 1;
            }
        }
    }
    assert!(total > 30, "drift applied to only {total} gold programs");
    assert!(
        changed as f64 / total as f64 > 0.6,
        "drift changed outputs on only {changed}/{total} programs"
    );
}
