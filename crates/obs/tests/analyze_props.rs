//! Property suite for the trace reader: whatever bytes you feed it —
//! valid traces, traces torn at an arbitrary byte, traces with one byte
//! flipped — it yields typed [`AnalyzeError`]s, never panics; and every
//! line the tracer emits parses back and re-serializes byte-for-byte.

use proptest::prelude::*;
use rb_obs::analyze::{self, AnalyzeError, SpanTree};
use rb_obs::trace::{scope, span, Tracer};

/// Span names the generator draws from — the real vocabulary plus names
/// that stress JSON escaping.
const NAMES: [&str; 6] = [
    "engine.job",
    "repair",
    "fast",
    "with \"quotes\"",
    "uni—codé",
    "tab\there\nand newline",
];

const TAG_KEYS: [&str; 3] = ["class", "worker", "note \"k\""];

/// One generated trace op: `(action, selector, value)`. Actions: open a
/// span, close the innermost span, tag / charge sim on the innermost.
fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u8, u32)>> {
    prop::collection::vec((0u8..4, 0u8..6, 0u32..100_000), 1..48)
}

/// Replays `ops` against a fresh in-memory tracer and returns the JSONL
/// lines it emitted. Every generated trace is valid by construction —
/// it came out of the real emitter.
fn emit(ops: &[(u8, u8, u32)]) -> Vec<String> {
    let tracer = Tracer::in_memory();
    {
        let _g = scope(&tracer);
        let mut stack = Vec::new();
        for &(action, selector, value) in ops {
            match action {
                0 | 1 => stack.push(span(NAMES[selector as usize % NAMES.len()])),
                2 => {
                    drop(stack.pop());
                }
                _ => {
                    if let Some(top) = stack.last_mut() {
                        let key = TAG_KEYS[selector as usize % TAG_KEYS.len()];
                        top.tag(key, format!("v{value} \"esc\"\n\t—"));
                        top.add_sim_ms(f64::from(value) / 16.0);
                    }
                }
            }
        }
        // Close the rest innermost-first so nesting stays strict.
        while let Some(s) = stack.pop() {
            drop(s);
        }
    }
    tracer.lines()
}

/// Consumes every reader item, panicking only if the reader itself
/// panicked (the property under test). Returns (ok, err) counts.
fn drain(bytes: &[u8]) -> (usize, usize) {
    let mut ok = 0;
    let mut err = 0;
    let mut spans = Vec::new();
    for item in analyze::SpanReader::new(bytes) {
        match item {
            Ok(s) => {
                ok += 1;
                spans.push(s);
            }
            Err(
                AnalyzeError::Io { .. }
                | AnalyzeError::Utf8 { .. }
                | AnalyzeError::Json { .. }
                | AnalyzeError::Field { .. }
                | AnalyzeError::Tree { .. },
            ) => err += 1,
        }
    }
    // Whatever parsed must also survive tree building (which may
    // legitimately reject — corrupt ids can collide — but never panic).
    let _ = SpanTree::build(spans);
    (ok, err)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tracer_output_parses_and_reserializes_byte_for_byte(ops in ops_strategy()) {
        let lines = emit(&ops);
        for (n, line) in lines.iter().enumerate() {
            let parsed = analyze::parse_line(line, n + 1);
            prop_assert!(parsed.is_ok(), "line {n} failed: {parsed:?}\n{line}");
            prop_assert_eq!(&parsed.unwrap().to_json_line(), line);
        }
        // The full trace forms a tree with no duplicate ids or dangling
        // parents, and parsing the joined stream agrees line-for-line.
        let text = lines.join("\n");
        let spans = analyze::read_str(&text).expect("valid trace must parse");
        prop_assert_eq!(spans.len(), lines.len());
        prop_assert!(SpanTree::build(spans).is_ok());
    }

    #[test]
    fn truncation_yields_typed_errors_never_panics(
        ops in ops_strategy(),
        frac in 0u32..10_000,
    ) {
        let text = emit(&ops).join("\n");
        let bytes = text.as_bytes();
        let cut = (bytes.len() as u64 * u64::from(frac) / 10_000) as usize;
        let (ok, err) = drain(&bytes[..cut]);
        // A tear hits at most the one line it lands in: everything
        // before it still parses.
        prop_assert!(err <= 1, "one cut produced {err} errors");
        prop_assert!(ok <= text.lines().count());
    }

    #[test]
    fn byte_corruption_yields_typed_errors_never_panics(
        ops in ops_strategy(),
        frac in 0u32..10_000,
        garbage in 0u32..256,
    ) {
        let text = emit(&ops).join("\n");
        let mut bytes = text.as_bytes().to_vec();
        if bytes.is_empty() {
            return Ok(());
        }
        let at = (bytes.len() as u64 * u64::from(frac) / 10_000) as usize;
        let at = at.min(bytes.len() - 1);
        bytes[at] = garbage as u8;
        // Never panics; errors (if any) are typed by construction of
        // the Result item — draining is the assertion.
        let _ = drain(&bytes);
    }
}
