//! Structured span tracing with a JSONL sink.
//!
//! A [`Tracer`] is a cheap cloneable handle on a shared sink. It is
//! *installed* on a thread with [`scope`]; from then until the returned
//! guard drops, [`span`] opens a real span and emits one JSON line when
//! the span drops. Parentage is tracked per thread with a span-id stack,
//! so strictly nested RAII guards reconstruct the call tree without any
//! parameter threading through the instrumented code.
//!
//! One line per finished span:
//!
//! ```json
//! {"id":3,"parent":2,"name":"repair","t_us":120,"wall_us":857,
//!  "sim_ms":6423.5,"tags":{"case":"panic-0","class":"panic"}}
//! ```
//!
//! - `id` / `parent`: span ids unique within the tracer (`parent` is
//!   `null` for roots). Children appear *before* their parent (a child
//!   guard drops first) — consumers reconstruct the tree from the ids.
//! - `t_us`: span start, microseconds since the tracer was created.
//! - `wall_us`: real elapsed microseconds between open and drop.
//! - `sim_ms`: simulated milliseconds attributed to this span via
//!   [`Span::add_sim_ms`] — the same numbers the cost model charges, so
//!   a span tree's `sim_ms` totals reconcile with `RepairOutcome`
//!   overhead exactly.
//! - `tags`: free-form string key/values ([`Span::tag`]).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Escapes a string into a JSON string literal (with quotes).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a simulated-milliseconds value for the wire: fixed four
/// decimals, and non-finite inputs (which instrumented code should never
/// produce) clamp to zero rather than emitting invalid JSON.
pub(crate) fn fmt_sim_ms(ms: f64) -> String {
    if ms.is_finite() {
        format!("{ms:.4}")
    } else {
        "0.0000".to_owned()
    }
}

enum Sink {
    File(BufWriter<File>),
    Memory(Vec<String>),
}

struct TracerInner {
    sink: Mutex<Sink>,
    next_id: AtomicU64,
    emitted: AtomicU64,
    epoch: Instant,
}

/// A handle on a shared trace sink. Clones share the sink and the span-id
/// counter, so one tracer can be installed on many threads (each engine
/// worker, each serve handler) and their spans interleave safely in one
/// output stream.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

impl Tracer {
    fn with_sink(sink: Sink) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                sink: Mutex::new(sink),
                next_id: AtomicU64::new(1),
                emitted: AtomicU64::new(0),
                epoch: Instant::now(),
            }),
        }
    }

    /// A tracer that appends JSONL lines to a buffered file at `path`
    /// (created or truncated).
    pub fn to_file(path: &Path) -> std::io::Result<Tracer> {
        let file = File::create(path)?;
        Ok(Tracer::with_sink(Sink::File(BufWriter::new(file))))
    }

    /// A tracer that collects lines in memory — the test-friendly sink;
    /// read back with [`Tracer::lines`].
    #[must_use]
    pub fn in_memory() -> Tracer {
        Tracer::with_sink(Sink::Memory(Vec::new()))
    }

    /// The lines emitted so far (empty for file-backed tracers).
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        match &*self.lock() {
            Sink::Memory(lines) => lines.clone(),
            Sink::File(_) => Vec::new(),
        }
    }

    /// Flushes a file-backed sink (a no-op for in-memory tracers). Also
    /// happens when the last handle drops.
    pub fn flush(&self) {
        if let Sink::File(w) = &mut *self.lock() {
            let _ = w.flush();
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Sink> {
        // An observability panic must never take the observed system
        // down; a poisoned sink keeps emitting.
        self.inner
            .sink
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn emit(&self, line: &str) {
        match &mut *self.lock() {
            Sink::File(w) => {
                let _ = writeln!(w, "{line}");
            }
            Sink::Memory(lines) => lines.push(line.to_owned()),
        }
        self.inner.emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Span records emitted so far across every clone of this tracer —
    /// the resident daemon reports this through `stats` so operators can
    /// see the trace growing without touching the file.
    #[must_use]
    pub fn spans_emitted(&self) -> u64 {
        self.inner.emitted.load(Ordering::Relaxed)
    }

    fn next_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }
}

struct ThreadState {
    tracer: Tracer,
    stack: Vec<u64>,
}

thread_local! {
    static ACTIVE: std::cell::RefCell<Option<ThreadState>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs `tracer` on the current thread for the guard's lifetime.
/// Dropping the guard restores whatever was installed before (scopes
/// nest). While a scope is active, [`span`] emits; outside one it is a
/// no-op.
#[must_use = "the tracer is uninstalled when the guard drops"]
pub fn scope(tracer: &Tracer) -> ScopeGuard {
    let prev = ACTIVE.with(|a| {
        a.borrow_mut().replace(ThreadState {
            tracer: tracer.clone(),
            stack: Vec::new(),
        })
    });
    ScopeGuard { prev }
}

/// RAII guard returned by [`scope`]; restores the previous thread state
/// on drop.
pub struct ScopeGuard {
    prev: Option<ThreadState>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ACTIVE.with(|a| *a.borrow_mut() = prev);
    }
}

struct SpanInner {
    tracer: Tracer,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    t_us: u64,
    start: Instant,
    sim_ms: f64,
    tags: Vec<(&'static str, String)>,
}

/// An open span. Created by [`span`]; emits its JSONL record when
/// dropped. Inert (all methods are no-ops) when no tracer is installed
/// on the creating thread.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    inner: Option<SpanInner>,
}

/// Opens a span named `name` under the currently installed tracer, as a
/// child of the innermost open span on this thread. Returns an inert
/// span when no tracer is installed.
pub fn span(name: &'static str) -> Span {
    let inner = ACTIVE.with(|a| {
        let mut state = a.borrow_mut();
        let state = state.as_mut()?;
        let id = state.tracer.next_id();
        let parent = state.stack.last().copied();
        state.stack.push(id);
        Some(SpanInner {
            t_us: u64::try_from(state.tracer.inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
            tracer: state.tracer.clone(),
            id,
            parent,
            name,
            start: Instant::now(),
            sim_ms: 0.0,
            tags: Vec::new(),
        })
    });
    Span { inner }
}

/// Emits a zero-duration event record (a span opened and closed in
/// place) — used for point-in-time occurrences like a rollback decision.
pub fn event(name: &'static str, tags: &[(&'static str, &str)]) {
    let mut s = span(name);
    for (k, v) in tags {
        s.tag(k, (*v).to_owned());
    }
    drop(s);
}

impl Span {
    /// Whether this span will emit a record (a tracer was installed when
    /// it was opened).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a string tag; later values for the same key win.
    pub fn tag(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(inner) = &mut self.inner {
            let value = value.into();
            if let Some(slot) = inner.tags.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = value;
            } else {
                inner.tags.push((key, value));
            }
        }
    }

    /// Attributes `ms` simulated milliseconds to this span (accumulates
    /// across calls). Mirror of the cost model's charge sites.
    pub fn add_sim_ms(&mut self, ms: f64) {
        if let Some(inner) = &mut self.inner {
            inner.sim_ms += ms;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        // Pop this span from the thread's open-span stack. Strict RAII
        // nesting means it is the top, but a span moved across an early
        // return could drop out of order — truncate to its position so
        // parentage degrades rather than corrupts.
        ACTIVE.with(|a| {
            if let Some(state) = a.borrow_mut().as_mut() {
                if let Some(pos) = state.stack.iter().rposition(|&id| id == inner.id) {
                    state.stack.truncate(pos);
                }
            }
        });
        let wall_us = u64::try_from(inner.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut line = String::with_capacity(128);
        line.push_str("{\"id\":");
        line.push_str(&inner.id.to_string());
        line.push_str(",\"parent\":");
        match inner.parent {
            Some(p) => line.push_str(&p.to_string()),
            None => line.push_str("null"),
        }
        line.push_str(",\"name\":");
        line.push_str(&json_escape(inner.name));
        line.push_str(",\"t_us\":");
        line.push_str(&inner.t_us.to_string());
        line.push_str(",\"wall_us\":");
        line.push_str(&wall_us.to_string());
        line.push_str(",\"sim_ms\":");
        line.push_str(&fmt_sim_ms(inner.sim_ms));
        line.push_str(",\"tags\":{");
        for (i, (k, v)) in inner.tags.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&json_escape(k));
            line.push(':');
            line.push_str(&json_escape(v));
        }
        line.push_str("}}");
        inner.tracer.emit(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field_u64(line: &str, key: &str) -> Option<u64> {
        let marker = format!("\"{key}\":");
        let rest = &line[line.find(&marker)? + marker.len()..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    #[test]
    fn spans_are_inert_without_a_scope() {
        let mut s = span("orphan");
        assert!(!s.is_active());
        s.tag("k", "v");
        s.add_sim_ms(10.0);
        drop(s);
        // Nothing to observe — the point is that none of it panicked.
    }

    #[test]
    fn nesting_is_reconstructible_from_parent_ids() {
        let tracer = Tracer::in_memory();
        {
            let _g = scope(&tracer);
            let mut root = span("root");
            root.add_sim_ms(5.0);
            {
                let mut child = span("child");
                child.tag("class", "panic");
                child.add_sim_ms(2.5);
                let _grand = span("grandchild");
            }
            let _sibling = span("sibling");
        }
        let lines = tracer.lines();
        assert_eq!(lines.len(), 4);
        // Drop order: grandchild, child, sibling, root.
        let ids: Vec<u64> = lines.iter().map(|l| field_u64(l, "id").unwrap()).collect();
        let root_line = lines
            .iter()
            .find(|l| l.contains("\"name\":\"root\""))
            .unwrap();
        let root_id = field_u64(root_line, "id").unwrap();
        let child_line = lines
            .iter()
            .find(|l| l.contains("\"name\":\"child\""))
            .unwrap();
        let grand_line = lines
            .iter()
            .find(|l| l.contains("\"name\":\"grandchild\""))
            .unwrap();
        let sibling_line = lines
            .iter()
            .find(|l| l.contains("\"name\":\"sibling\""))
            .unwrap();
        assert!(root_line.contains("\"parent\":null"));
        assert_eq!(field_u64(child_line, "parent"), Some(root_id));
        assert_eq!(field_u64(grand_line, "parent"), field_u64(child_line, "id"));
        assert_eq!(field_u64(sibling_line, "parent"), Some(root_id));
        // Ids are unique.
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        // Sim attribution and tags made it to the wire.
        assert!(root_line.contains("\"sim_ms\":5.0000"), "{root_line}");
        assert!(child_line.contains("\"class\":\"panic\""), "{child_line}");
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = Tracer::in_memory();
        let inner = Tracer::in_memory();
        let _g = scope(&outer);
        {
            let _g2 = scope(&inner);
            drop(span("into_inner"));
        }
        drop(span("into_outer"));
        assert_eq!(inner.lines().len(), 1);
        assert_eq!(outer.lines().len(), 1);
        assert!(outer.lines()[0].contains("into_outer"));
    }

    #[test]
    fn events_and_escaping() {
        let tracer = Tracer::in_memory();
        let _g = scope(&tracer);
        event("rollback", &[("note", "say \"hi\"\n")]);
        let lines = tracer.lines();
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains(r#""note":"say \"hi\"\n""#),
            "{}",
            lines[0]
        );
    }

    #[test]
    fn file_sink_round_trips() {
        let dir = std::env::temp_dir().join(format!("rb_obs_trace_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let tracer = Tracer::to_file(&path).unwrap();
        {
            let _g = scope(&tracer);
            drop(span("solo"));
        }
        tracer.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"name\":\"solo\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_sim_never_reaches_the_wire() {
        let tracer = Tracer::in_memory();
        let _g = scope(&tracer);
        let mut s = span("weird");
        s.add_sim_ms(f64::NAN);
        drop(s);
        let lines = tracer.lines();
        assert!(lines[0].contains("\"sim_ms\":0.0000"), "{}", lines[0]);
        assert!(!lines[0].contains("NaN"));
    }
}
