//! Trace analytics over the JSONL span stream [`crate::trace`] emits.
//!
//! PR 7 made the system *emit* traces; this module makes the repo able
//! to *read* them without reaching for throwaway scripts. It is built in
//! three layers, each usable on its own:
//!
//! 1. **Streaming reader** — [`SpanReader`] walks a JSONL byte stream
//!    one line at a time and yields `Result<TraceSpan, AnalyzeError>`.
//!    Truncated lines, invalid UTF-8 and corrupt JSON become *typed
//!    errors*, never panics — a half-written trace from a crashed run
//!    must still be analyzable up to the tear.
//! 2. **Span tree** — [`SpanTree::build`] reconstructs the call tree
//!    from `id`/`parent` pairs and [`check`] re-validates the tracer's
//!    contract: unique ids, resolvable parents, and ≥95% of every
//!    `repair` span's `sim_ms` covered by its direct children (the
//!    children-sum-to-`overhead_ms` invariant CI has gated since PR 7).
//! 3. **Analyses** — [`flamegraph`] (inclusive/self sim-ms and wall-us
//!    rolled up by span-name path and by class tag, renderable as sorted
//!    text or collapsed-stack format), [`critical_path`] (per-worker
//!    `engine.job` lanes and the max-theoretical-speedup bound they
//!    imply, comparable against `model_schedule`'s modeled speedup), and
//!    [`diff`] (per-path deltas between two runs, sorted by regression
//!    magnitude).
//!
//! The crate stays dependency-free, so the JSON decoding here is a
//! small hand-rolled parser scoped to one object per line. Parsing is
//! exact enough that [`TraceSpan::to_json_line`] reproduces a
//! tracer-emitted line byte-for-byte — pinned by property tests.

use std::collections::{BTreeMap, HashMap};
use std::io::BufRead;
use std::path::Path;

use crate::trace::{fmt_sim_ms, json_escape};

/// Fraction of a `repair` span's `sim_ms` its direct children must
/// cover for [`check`] to pass — the same 95% gate CI has enforced
/// since the tracer landed.
pub const DEFAULT_COVERAGE: f64 = 0.95;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a trace could not be read or its tree could not be built. Every
/// failure mode of the reader is one of these — corrupt input is a
/// value, not a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The underlying byte stream failed mid-read (`line` is the line
    /// being read when it happened; 0 when the file could not be
    /// opened at all).
    Io {
        /// 1-based line number, 0 for open failures.
        line: usize,
        /// The I/O error's message.
        message: String,
    },
    /// A line is not valid UTF-8 (byte corruption lands here).
    Utf8 {
        /// 1-based line number.
        line: usize,
    },
    /// A line is not one complete JSON object (truncation lands here).
    Json {
        /// 1-based line number.
        line: usize,
        /// What the parser choked on.
        reason: String,
    },
    /// The JSON parsed but a span field is missing or mistyped.
    Field {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        reason: String,
    },
    /// The spans parsed but do not form a tree (duplicate id, dangling
    /// parent, or a parent cycle).
    Tree {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Io { line, message } if *line == 0 => {
                write!(f, "trace unreadable: {message}")
            }
            AnalyzeError::Io { line, message } => {
                write!(f, "trace line {line}: read failed: {message}")
            }
            AnalyzeError::Utf8 { line } => write!(f, "trace line {line}: not valid UTF-8"),
            AnalyzeError::Json { line, reason } => {
                write!(f, "trace line {line}: not a JSON object: {reason}")
            }
            AnalyzeError::Field {
                line,
                field,
                reason,
            } => write!(f, "trace line {line}: field {field:?}: {reason}"),
            AnalyzeError::Tree { reason } => write!(f, "trace is not a span tree: {reason}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

// ---------------------------------------------------------------------------
// A minimal JSON parser (one value), kept private to this module
// ---------------------------------------------------------------------------

// Bool/Arr payloads are parsed for completeness but no span field is
// ever one of them, so nothing reads the values back out.
#[allow(dead_code)]
enum JsonVal {
    Null,
    Bool(bool),
    /// A number that lexed as a plain unsigned integer — kept exact so
    /// span ids survive beyond 2^53.
    UInt(u64),
    Num(f64),
    Str(String),
    Arr(Vec<JsonVal>),
    Obj(Vec<(String, JsonVal)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: text.as_bytes(),
            at: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                char::from(byte),
                self.at
            ))
        }
    }

    fn parse_value(&mut self) -> Result<JsonVal, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonVal::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonVal::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonVal::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonVal::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(format!(
                "unexpected byte {:?} at {}",
                char::from(c),
                self.at
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn parse_literal(&mut self, word: &str, value: JsonVal) -> Result<JsonVal, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn parse_number(&mut self) -> Result<JsonVal, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| "non-UTF-8 number".to_owned())?;
        if !token.contains(['.', 'e', 'E', '-', '+']) {
            if let Ok(v) = token.parse::<u64>() {
                return Ok(JsonVal::UInt(v));
            }
        }
        token
            .parse::<f64>()
            .map(JsonVal::Num)
            .map_err(|_| format!("bad number {token:?}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let first = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX pair must follow.
                                if self.bytes[self.at..].starts_with(b"\\u") {
                                    self.at += 2;
                                    let second = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err("unpaired surrogate".to_owned());
                                    }
                                    let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                    char::from_u32(cp).ok_or("bad surrogate pair")?
                                } else {
                                    return Err("unpaired surrogate".to_owned());
                                }
                            } else {
                                char::from_u32(first).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err("bad escape".to_owned()),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar (input is a &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| "non-UTF-8 string body".to_owned())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err("raw control character in string".to_owned());
                    }
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.at..self.at + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or("truncated \\u escape")?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
        self.at += 4;
        Ok(v)
    }

    fn parse_array(&mut self) -> Result<JsonVal, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(JsonVal::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(JsonVal::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonVal, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(JsonVal::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(JsonVal::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }
}

fn parse_json_object(text: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let mut p = JsonParser::new(text);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing bytes after value at byte {}", p.at));
    }
    match value {
        JsonVal::Obj(fields) => Ok(fields),
        _ => Err("line is not a JSON object".to_owned()),
    }
}

// ---------------------------------------------------------------------------
// TraceSpan + streaming reader
// ---------------------------------------------------------------------------

/// One parsed span record — the in-memory mirror of a tracer JSONL line.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpan {
    /// Span id, unique within one trace.
    pub id: u64,
    /// Parent span id (`None` for roots).
    pub parent: Option<u64>,
    /// Span name (`engine.job`, `repair`, `fast`, ...).
    pub name: String,
    /// Start time, microseconds since the tracer's epoch.
    pub t_us: u64,
    /// Real elapsed microseconds between open and drop.
    pub wall_us: u64,
    /// Simulated milliseconds charged to the span, inclusive of
    /// children.
    pub sim_ms: f64,
    /// Tags in emission order (the tracer writes them in insertion
    /// order; preserving it keeps re-serialization byte-exact).
    pub tags: Vec<(String, String)>,
}

impl TraceSpan {
    /// The value of tag `key`, if present.
    #[must_use]
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Re-serializes the span exactly as the tracer would have emitted
    /// it — same field order, same escaping, same `sim_ms` formatting.
    /// `parse_line(span.to_json_line())` is the identity, and for lines
    /// the tracer produced the bytes round-trip too.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut line = String::with_capacity(128);
        line.push_str("{\"id\":");
        line.push_str(&self.id.to_string());
        line.push_str(",\"parent\":");
        match self.parent {
            Some(p) => line.push_str(&p.to_string()),
            None => line.push_str("null"),
        }
        line.push_str(",\"name\":");
        line.push_str(&json_escape(&self.name));
        line.push_str(",\"t_us\":");
        line.push_str(&self.t_us.to_string());
        line.push_str(",\"wall_us\":");
        line.push_str(&self.wall_us.to_string());
        line.push_str(",\"sim_ms\":");
        line.push_str(&fmt_sim_ms(self.sim_ms));
        line.push_str(",\"tags\":{");
        for (i, (k, v)) in self.tags.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&json_escape(k));
            line.push(':');
            line.push_str(&json_escape(v));
        }
        line.push_str("}}");
        line
    }
}

fn take_u64(val: &JsonVal, line: usize, field: &'static str) -> Result<u64, AnalyzeError> {
    match val {
        JsonVal::UInt(v) => Ok(*v),
        _ => Err(AnalyzeError::Field {
            line,
            field,
            reason: "expected an unsigned integer".to_owned(),
        }),
    }
}

/// Parses one JSONL line into a [`TraceSpan`]. `line_no` is 1-based and
/// only used for error reporting. Unknown fields are ignored (forward
/// compatibility); missing or mistyped required fields are
/// [`AnalyzeError::Field`].
pub fn parse_line(text: &str, line_no: usize) -> Result<TraceSpan, AnalyzeError> {
    let fields = parse_json_object(text).map_err(|reason| AnalyzeError::Json {
        line: line_no,
        reason,
    })?;
    let mut id = None;
    let mut parent = None;
    let mut parent_seen = false;
    let mut name = None;
    let mut t_us = None;
    let mut wall_us = None;
    let mut sim_ms = None;
    let mut tags = None;
    for (key, value) in fields {
        match key.as_str() {
            "id" => id = Some(take_u64(&value, line_no, "id")?),
            "parent" => {
                parent_seen = true;
                parent = match value {
                    JsonVal::Null => None,
                    other => Some(take_u64(&other, line_no, "parent")?),
                };
            }
            "name" => match value {
                JsonVal::Str(s) => name = Some(s),
                _ => {
                    return Err(AnalyzeError::Field {
                        line: line_no,
                        field: "name",
                        reason: "expected a string".to_owned(),
                    })
                }
            },
            "t_us" => t_us = Some(take_u64(&value, line_no, "t_us")?),
            "wall_us" => wall_us = Some(take_u64(&value, line_no, "wall_us")?),
            "sim_ms" => {
                sim_ms = Some(match value {
                    JsonVal::Num(v) if v.is_finite() => v,
                    JsonVal::UInt(v) => v as f64,
                    _ => {
                        return Err(AnalyzeError::Field {
                            line: line_no,
                            field: "sim_ms",
                            reason: "expected a finite number".to_owned(),
                        })
                    }
                });
            }
            "tags" => match value {
                JsonVal::Obj(pairs) => {
                    let mut out = Vec::with_capacity(pairs.len());
                    for (k, v) in pairs {
                        match v {
                            JsonVal::Str(s) => out.push((k, s)),
                            _ => {
                                return Err(AnalyzeError::Field {
                                    line: line_no,
                                    field: "tags",
                                    reason: format!("tag {k:?} is not a string"),
                                })
                            }
                        }
                    }
                    tags = Some(out);
                }
                _ => {
                    return Err(AnalyzeError::Field {
                        line: line_no,
                        field: "tags",
                        reason: "expected an object".to_owned(),
                    })
                }
            },
            _ => {} // unknown field: ignore
        }
    }
    let missing = |field: &'static str| AnalyzeError::Field {
        line: line_no,
        field,
        reason: "missing".to_owned(),
    };
    if !parent_seen {
        return Err(missing("parent"));
    }
    Ok(TraceSpan {
        id: id.ok_or_else(|| missing("id"))?,
        parent,
        name: name.ok_or_else(|| missing("name"))?,
        t_us: t_us.ok_or_else(|| missing("t_us"))?,
        wall_us: wall_us.ok_or_else(|| missing("wall_us"))?,
        sim_ms: sim_ms.ok_or_else(|| missing("sim_ms"))?,
        tags: tags.ok_or_else(|| missing("tags"))?,
    })
}

/// Streaming JSONL span reader: yields one `Result<TraceSpan,
/// AnalyzeError>` per non-empty line and never panics on bad input.
/// After the first I/O error the iterator fuses (returns `None`), since
/// the stream position is no longer trustworthy; parse errors on
/// individual lines do *not* stop iteration, so a consumer can choose
/// between fail-fast ([`read_str`]/[`read_file`]) and salvage-what-reads.
pub struct SpanReader<R: BufRead> {
    reader: R,
    line_no: usize,
    fused: bool,
    buf: Vec<u8>,
}

impl<R: BufRead> SpanReader<R> {
    /// Wraps a buffered byte stream.
    pub fn new(reader: R) -> SpanReader<R> {
        SpanReader {
            reader,
            line_no: 0,
            fused: false,
            buf: Vec::new(),
        }
    }
}

impl<R: BufRead> Iterator for SpanReader<R> {
    type Item = Result<TraceSpan, AnalyzeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.fused {
            return None;
        }
        loop {
            self.line_no += 1;
            self.buf.clear();
            match self.reader.read_until(b'\n', &mut self.buf) {
                Err(e) => {
                    self.fused = true;
                    return Some(Err(AnalyzeError::Io {
                        line: self.line_no,
                        message: e.to_string(),
                    }));
                }
                Ok(0) => {
                    self.fused = true;
                    return None;
                }
                Ok(_) => {}
            }
            while matches!(self.buf.last(), Some(b'\n' | b'\r')) {
                self.buf.pop();
            }
            if self.buf.is_empty() {
                continue; // blank line (e.g. trailing newline)
            }
            let Ok(text) = std::str::from_utf8(&self.buf) else {
                return Some(Err(AnalyzeError::Utf8 { line: self.line_no }));
            };
            return Some(parse_line(text, self.line_no));
        }
    }
}

/// Parses a whole trace held in memory, failing on the first bad line.
pub fn read_str(text: &str) -> Result<Vec<TraceSpan>, AnalyzeError> {
    SpanReader::new(text.as_bytes()).collect()
}

/// Reads and parses a trace file, failing on the first bad line. A file
/// that cannot be opened is `Io { line: 0, .. }`.
pub fn read_file(path: &Path) -> Result<Vec<TraceSpan>, AnalyzeError> {
    let file = std::fs::File::open(path).map_err(|e| AnalyzeError::Io {
        line: 0,
        message: format!("{}: {e}", path.display()),
    })?;
    SpanReader::new(std::io::BufReader::new(file)).collect()
}

// ---------------------------------------------------------------------------
// Span tree + invariant check
// ---------------------------------------------------------------------------

/// The reconstructed call tree of one trace: spans plus child lists,
/// root set, and the `;`-joined name path of every span (collapsed-stack
/// convention, root first).
pub struct SpanTree {
    spans: Vec<TraceSpan>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
    paths: Vec<String>,
}

impl SpanTree {
    /// Builds the tree, rejecting duplicate ids, dangling parents and
    /// parent cycles as [`AnalyzeError::Tree`].
    pub fn build(spans: Vec<TraceSpan>) -> Result<SpanTree, AnalyzeError> {
        let mut index_of: HashMap<u64, usize> = HashMap::with_capacity(spans.len());
        for (i, s) in spans.iter().enumerate() {
            if index_of.insert(s.id, i).is_some() {
                return Err(AnalyzeError::Tree {
                    reason: format!("duplicate span id {}", s.id),
                });
            }
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match s.parent {
                None => roots.push(i),
                Some(p) => match index_of.get(&p) {
                    Some(&pi) => children[pi].push(i),
                    None => {
                        return Err(AnalyzeError::Tree {
                            reason: format!("span {} has dangling parent {p}", s.id),
                        })
                    }
                },
            }
        }
        // Assign paths by walking down from the roots; anything left
        // unvisited sits on a parent cycle.
        let mut paths: Vec<Option<String>> = vec![None; spans.len()];
        let mut stack: Vec<usize> = roots.clone();
        for &r in &roots {
            paths[r] = Some(spans[r].name.clone());
        }
        while let Some(i) = stack.pop() {
            let base = paths[i].clone().expect("pushed nodes have paths");
            for &c in &children[i] {
                paths[c] = Some(format!("{base};{}", spans[c].name));
                stack.push(c);
            }
        }
        if let Some(orphan) = paths.iter().position(Option::is_none) {
            return Err(AnalyzeError::Tree {
                reason: format!("span {} sits on a parent cycle", spans[orphan].id),
            });
        }
        Ok(SpanTree {
            children,
            roots,
            paths: paths.into_iter().map(|p| p.expect("all visited")).collect(),
            spans,
        })
    }

    /// All spans, in file order.
    #[must_use]
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Indices of the root spans.
    #[must_use]
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Indices of span `i`'s direct children.
    #[must_use]
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// The `;`-joined name path of span `i`, root first.
    #[must_use]
    pub fn path(&self, i: usize) -> &str {
        &self.paths[i]
    }
}

/// What [`check`] validates beyond well-formedness.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Required child-sim coverage of each `repair` span (0.95 = the CI
    /// gate).
    pub coverage: f64,
    /// Span names that must each appear at least once (empty = no
    /// requirement). CI requires `engine.job`, `repair`, `fast` on
    /// batch traces.
    pub require_names: Vec<String>,
    /// Accept an empty trace (default: an empty trace is a violation —
    /// a traced batch that emitted nothing is a broken batch).
    pub allow_empty: bool,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            coverage: DEFAULT_COVERAGE,
            require_names: Vec::new(),
            allow_empty: false,
        }
    }
}

/// The outcome of [`check`]: summary numbers plus every violation found
/// (empty `violations` means the trace honors the tracer's contract).
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Spans in the trace.
    pub spans: usize,
    /// Root spans.
    pub roots: usize,
    /// `repair` spans.
    pub repairs: usize,
    /// Per-name span counts.
    pub names: BTreeMap<String, u64>,
    /// The worst child-sim coverage over `repair` spans with positive
    /// `sim_ms` (1.0 when there are none).
    pub min_repair_coverage: f64,
    /// Everything that violated the contract, human-readable.
    pub violations: Vec<String>,
}

impl CheckReport {
    /// `true` when no violations were found.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Multi-line human-readable report (what `rustbrain trace check`
    /// prints).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "spans: {} ({} roots, {} repairs, min repair coverage {:.4})\n",
            self.spans, self.roots, self.repairs, self.min_repair_coverage
        ));
        for (name, count) in &self.names {
            out.push_str(&format!("  {count:>8}  {name}\n"));
        }
        if self.ok() {
            out.push_str("trace ok: parseable, nested, and overhead-covered\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION: {v}\n"));
            }
        }
        out
    }
}

/// Re-validates the tracer's structural contract on a parsed span list:
/// unique ids, resolvable parents, and every `repair` span's direct
/// children covering ≥ `opts.coverage` of its `sim_ms`. Collects *all*
/// violations instead of stopping at the first, so one run of
/// `rustbrain trace check` shows the whole damage.
#[must_use]
pub fn check(spans: &[TraceSpan], opts: &CheckOptions) -> CheckReport {
    let mut violations = Vec::new();
    let mut names: BTreeMap<String, u64> = BTreeMap::new();
    let mut ids: HashMap<u64, usize> = HashMap::with_capacity(spans.len());
    for s in spans {
        *names.entry(s.name.clone()).or_insert(0) += 1;
        if let Some(prev) = ids.insert(s.id, 1) {
            let _ = prev;
            violations.push(format!("duplicate span id {}", s.id));
        }
    }
    if spans.is_empty() && !opts.allow_empty {
        violations.push("trace is empty".to_owned());
    }
    let mut child_sim: HashMap<u64, f64> = HashMap::new();
    let mut roots = 0usize;
    for s in spans {
        match s.parent {
            None => roots += 1,
            Some(p) => {
                if ids.contains_key(&p) {
                    *child_sim.entry(p).or_insert(0.0) += s.sim_ms;
                } else {
                    violations.push(format!("span {} has dangling parent {p}", s.id));
                }
            }
        }
    }
    let mut repairs = 0usize;
    let mut min_cov = 1.0f64;
    for s in spans.iter().filter(|s| s.name == "repair") {
        repairs += 1;
        let covered = child_sim.get(&s.id).copied().unwrap_or(0.0);
        if s.sim_ms > 0.0 {
            min_cov = min_cov.min(covered / s.sim_ms);
        }
        if covered < opts.coverage * s.sim_ms - 1e-6 {
            violations.push(format!(
                "repair span {} children cover {covered:.4} of {:.4} sim ms",
                s.id, s.sim_ms
            ));
        }
    }
    for required in &opts.require_names {
        if !names.contains_key(required) {
            violations.push(format!("required span kind {required:?} never appeared"));
        }
    }
    CheckReport {
        spans: spans.len(),
        roots,
        repairs,
        names,
        min_repair_coverage: min_cov,
        violations,
    }
}

// ---------------------------------------------------------------------------
// Analysis 1: flamegraph aggregation
// ---------------------------------------------------------------------------

/// Which measure a collapsed-stack rendering charges: simulated
/// microseconds (`sim_ms` × 1000, the deterministic cost model) or real
/// wall microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Measure {
    /// Simulated time (deterministic across hosts).
    Sim,
    /// Measured wall time.
    Wall,
}

impl Measure {
    /// Parses `"sim"` / `"wall"`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Measure> {
        match s {
            "sim" => Some(Measure::Sim),
            "wall" => Some(Measure::Wall),
            _ => None,
        }
    }
}

/// Aggregated cost of one span-name path across a trace. `incl_*` is
/// the sum over spans on the path (children included, per the tracer's
/// inclusive convention); `self_*` subtracts each span's direct
/// children, clamped at zero (wall overlap between a parent and its
/// children is measurement noise, not negative work).
#[derive(Clone, Debug, PartialEq)]
pub struct PathAgg {
    /// `;`-joined span names, root first.
    pub path: String,
    /// Spans that landed on this path.
    pub count: u64,
    /// Inclusive simulated milliseconds.
    pub incl_sim_ms: f64,
    /// Self simulated milliseconds.
    pub self_sim_ms: f64,
    /// Inclusive wall microseconds.
    pub incl_wall_us: u64,
    /// Self wall microseconds.
    pub self_wall_us: u64,
}

/// Rolls the tree up by span-name path, sorted by inclusive sim-ms
/// descending (ties broken by path).
#[must_use]
pub fn flamegraph(tree: &SpanTree) -> Vec<PathAgg> {
    let mut by_path: BTreeMap<&str, PathAgg> = BTreeMap::new();
    for (i, s) in tree.spans().iter().enumerate() {
        let child_sim: f64 = tree
            .children(i)
            .iter()
            .map(|&c| tree.spans()[c].sim_ms)
            .sum();
        let child_wall: u64 = tree
            .children(i)
            .iter()
            .map(|&c| tree.spans()[c].wall_us)
            .sum();
        let agg = by_path.entry(tree.path(i)).or_insert_with(|| PathAgg {
            path: tree.path(i).to_owned(),
            count: 0,
            incl_sim_ms: 0.0,
            self_sim_ms: 0.0,
            incl_wall_us: 0,
            self_wall_us: 0,
        });
        agg.count += 1;
        agg.incl_sim_ms += s.sim_ms;
        agg.self_sim_ms += (s.sim_ms - child_sim).max(0.0);
        agg.incl_wall_us += s.wall_us;
        agg.self_wall_us += s.wall_us.saturating_sub(child_wall);
    }
    let mut out: Vec<PathAgg> = by_path.into_values().collect();
    out.sort_by(|a, b| {
        b.incl_sim_ms
            .partial_cmp(&a.incl_sim_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.path.cmp(&b.path))
    });
    out
}

/// Self-time totals grouped by the `class` tag, inherited downward (a
/// `fast` span under a `repair` tagged `class=alloc` is charged to
/// `alloc`). Summing `self_*` over classes reproduces the trace totals
/// exactly — no span is double-counted.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassAgg {
    /// The `class` tag value, or `"(untagged)"`.
    pub class: String,
    /// Spans attributed to this class.
    pub count: u64,
    /// Self simulated milliseconds.
    pub self_sim_ms: f64,
    /// Self wall microseconds.
    pub self_wall_us: u64,
}

/// Rolls self-time up by (inherited) `class` tag, sorted by self sim-ms
/// descending.
#[must_use]
pub fn class_breakdown(tree: &SpanTree) -> Vec<ClassAgg> {
    // Effective class per span: own tag, else the nearest ancestor's.
    let mut effective: Vec<Option<String>> = vec![None; tree.spans().len()];
    let mut stack: Vec<usize> = tree.roots().to_vec();
    for &r in tree.roots() {
        effective[r] = tree.spans()[r].tag("class").map(str::to_owned);
    }
    while let Some(i) = stack.pop() {
        for &c in tree.children(i) {
            effective[c] = tree.spans()[c]
                .tag("class")
                .map(str::to_owned)
                .or_else(|| effective[i].clone());
            stack.push(c);
        }
    }
    let mut by_class: BTreeMap<String, ClassAgg> = BTreeMap::new();
    for (i, s) in tree.spans().iter().enumerate() {
        let child_sim: f64 = tree
            .children(i)
            .iter()
            .map(|&c| tree.spans()[c].sim_ms)
            .sum();
        let child_wall: u64 = tree
            .children(i)
            .iter()
            .map(|&c| tree.spans()[c].wall_us)
            .sum();
        let class = effective[i]
            .clone()
            .unwrap_or_else(|| "(untagged)".to_owned());
        let agg = by_class.entry(class.clone()).or_insert_with(|| ClassAgg {
            class,
            count: 0,
            self_sim_ms: 0.0,
            self_wall_us: 0,
        });
        agg.count += 1;
        agg.self_sim_ms += (s.sim_ms - child_sim).max(0.0);
        agg.self_wall_us += s.wall_us.saturating_sub(child_wall);
    }
    let mut out: Vec<ClassAgg> = by_class.into_values().collect();
    out.sort_by(|a, b| {
        b.self_sim_ms
            .partial_cmp(&a.self_sim_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.class.cmp(&b.class))
    });
    out
}

/// Renders path aggregates as a sorted text table (`top` 0 = all).
#[must_use]
pub fn render_flamegraph(aggs: &[PathAgg], classes: &[ClassAgg], top: usize) -> String {
    let shown = if top == 0 {
        aggs.len()
    } else {
        top.min(aggs.len())
    };
    let mut out = String::new();
    out.push_str("flamegraph by span path (inclusive sim-ms desc)\n");
    out.push_str(&format!(
        "{:>8} {:>16} {:>16} {:>14} {:>14}  {}\n",
        "count", "incl sim-ms", "self sim-ms", "incl wall-us", "self wall-us", "path"
    ));
    for a in &aggs[..shown] {
        out.push_str(&format!(
            "{:>8} {:>16.2} {:>16.2} {:>14} {:>14}  {}\n",
            a.count, a.incl_sim_ms, a.self_sim_ms, a.incl_wall_us, a.self_wall_us, a.path
        ));
    }
    if shown < aggs.len() {
        out.push_str(&format!("  ... {} more paths\n", aggs.len() - shown));
    }
    if !classes.is_empty() {
        out.push_str("\nby class (self time, inherited tags)\n");
        out.push_str(&format!(
            "{:>8} {:>16} {:>14}  {}\n",
            "count", "self sim-ms", "self wall-us", "class"
        ));
        for c in classes {
            out.push_str(&format!(
                "{:>8} {:>16.2} {:>14}  {}\n",
                c.count, c.self_sim_ms, c.self_wall_us, c.class
            ));
        }
    }
    out
}

/// Renders path aggregates in collapsed-stack format (one
/// `path value` line per path, semicolon-nested), consumable by
/// standard flamegraph tooling. Sim values are charged in simulated
/// microseconds so they stay integers.
#[must_use]
pub fn render_collapsed(aggs: &[PathAgg], measure: Measure) -> String {
    let mut out = String::new();
    for a in aggs {
        let value = match measure {
            Measure::Sim => (a.self_sim_ms * 1000.0).round() as u64,
            Measure::Wall => a.self_wall_us,
        };
        if value > 0 {
            out.push_str(&format!("{} {value}\n", a.path));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Analysis 2: critical path
// ---------------------------------------------------------------------------

/// One worker's lane of `engine.job` spans.
#[derive(Clone, Debug, PartialEq)]
pub struct LaneStat {
    /// The `worker` tag value (`"?"` for untagged jobs).
    pub worker: String,
    /// Jobs the lane executed.
    pub jobs: u64,
    /// Jobs the lane stole (per the `stolen` tag).
    pub stolen: u64,
    /// Total simulated milliseconds across the lane's jobs.
    pub sim_ms: f64,
    /// Total wall microseconds across the lane's jobs.
    pub wall_us: u64,
}

/// Per-lane totals of a batch's `engine.job` spans plus the speedup
/// bounds they imply. A batch's jobs are independent, so its critical
/// path is the busiest worker lane: no schedule that makes the same
/// placement can finish faster than the busiest lane, hence
/// `total / busiest` bounds the achievable speedup of *this* placement
/// and `total / longest job` bounds *any* placement.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    /// Lanes sorted by worker id.
    pub lanes: Vec<LaneStat>,
    /// Total jobs.
    pub jobs: u64,
    /// Total stolen jobs.
    pub stolen: u64,
    /// Sum of job sim-ms across lanes.
    pub total_sim_ms: f64,
    /// Sum of job wall-us across lanes.
    pub total_wall_us: u64,
    /// The single longest job by sim-ms.
    pub longest_sim_ms: f64,
    /// The single longest job by wall-us.
    pub longest_wall_us: u64,
    /// The busiest lane by sim-ms.
    pub critical_sim_ms: f64,
    /// The busiest lane by wall-us.
    pub critical_wall_us: u64,
}

impl CriticalPath {
    fn ratio(total: f64, bottleneck: f64) -> f64 {
        if bottleneck > 0.0 {
            total / bottleneck
        } else {
            0.0
        }
    }

    /// Max speedup this placement allows, by simulated time.
    #[must_use]
    pub fn speedup_bound_sim(&self) -> f64 {
        Self::ratio(self.total_sim_ms, self.critical_sim_ms)
    }

    /// Max speedup this placement allows, by wall time.
    #[must_use]
    pub fn speedup_bound_wall(&self) -> f64 {
        Self::ratio(self.total_wall_us as f64, self.critical_wall_us as f64)
    }

    /// Max speedup *any* placement allows (total over the longest
    /// single job), by simulated time.
    #[must_use]
    pub fn ideal_speedup_sim(&self) -> f64 {
        Self::ratio(self.total_sim_ms, self.longest_sim_ms)
    }

    /// Multi-line human-readable rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "critical path over {} engine.job spans ({} stolen, {} lanes)\n",
            self.jobs,
            self.stolen,
            self.lanes.len()
        ));
        for lane in &self.lanes {
            out.push_str(&format!(
                "  worker {:>3}: {:>6} jobs ({:>5} stolen) {:>16.2} sim-ms {:>14} wall-us\n",
                lane.worker, lane.jobs, lane.stolen, lane.sim_ms, lane.wall_us
            ));
        }
        out.push_str(&format!(
            "  total {:.2} sim-ms / {} wall-us; busiest lane {:.2} sim-ms / {} wall-us\n",
            self.total_sim_ms, self.total_wall_us, self.critical_sim_ms, self.critical_wall_us
        ));
        out.push_str(&format!(
            "  max speedup bound: {:.2}x (sim) {:.2}x (wall); ideal any-placement {:.2}x (sim)\n",
            self.speedup_bound_sim(),
            self.speedup_bound_wall(),
            self.ideal_speedup_sim()
        ));
        out
    }
}

/// Extracts the per-worker-lane critical path from a trace's
/// `engine.job` spans (empty lanes list when the trace has none).
#[must_use]
pub fn critical_path(tree: &SpanTree) -> CriticalPath {
    let mut lanes: BTreeMap<(usize, String), LaneStat> = BTreeMap::new();
    let mut total_sim = 0.0f64;
    let mut total_wall = 0u64;
    let mut longest_sim = 0.0f64;
    let mut longest_wall = 0u64;
    let mut jobs = 0u64;
    let mut stolen_total = 0u64;
    for s in tree.spans().iter().filter(|s| s.name == "engine.job") {
        let worker = s.tag("worker").unwrap_or("?").to_owned();
        // Numeric-first sort key so worker 10 follows worker 9.
        let key = (
            worker.parse::<usize>().unwrap_or(usize::MAX),
            worker.clone(),
        );
        let stolen = s.tag("stolen") == Some("true");
        let lane = lanes.entry(key).or_insert_with(|| LaneStat {
            worker,
            jobs: 0,
            stolen: 0,
            sim_ms: 0.0,
            wall_us: 0,
        });
        lane.jobs += 1;
        lane.sim_ms += s.sim_ms;
        lane.wall_us += s.wall_us;
        if stolen {
            lane.stolen += 1;
            stolen_total += 1;
        }
        jobs += 1;
        total_sim += s.sim_ms;
        total_wall += s.wall_us;
        longest_sim = longest_sim.max(s.sim_ms);
        longest_wall = longest_wall.max(s.wall_us);
    }
    let lanes: Vec<LaneStat> = lanes.into_values().collect();
    let critical_sim = lanes.iter().map(|l| l.sim_ms).fold(0.0f64, f64::max);
    let critical_wall = lanes.iter().map(|l| l.wall_us).max().unwrap_or(0);
    CriticalPath {
        lanes,
        jobs,
        stolen: stolen_total,
        total_sim_ms: total_sim,
        total_wall_us: total_wall,
        longest_sim_ms: longest_sim,
        longest_wall_us: longest_wall,
        critical_sim_ms: critical_sim,
        critical_wall_us: critical_wall,
    }
}

// ---------------------------------------------------------------------------
// Analysis 3: trace diff
// ---------------------------------------------------------------------------

/// Per-path delta between two traces (A = baseline, B = candidate).
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// The span-name path.
    pub path: String,
    /// Span count in A.
    pub count_a: u64,
    /// Span count in B.
    pub count_b: u64,
    /// Inclusive sim-ms in A.
    pub sim_a: f64,
    /// Inclusive sim-ms in B.
    pub sim_b: f64,
    /// Inclusive wall-us in A.
    pub wall_a: u64,
    /// Inclusive wall-us in B.
    pub wall_b: u64,
}

impl DiffRow {
    /// B − A in inclusive sim-ms (positive = regression).
    #[must_use]
    pub fn sim_delta(&self) -> f64 {
        self.sim_b - self.sim_a
    }

    /// B − A in inclusive wall-us (positive = regression).
    #[must_use]
    pub fn wall_delta(&self) -> i64 {
        self.wall_b as i64 - self.wall_a as i64
    }
}

/// Diffs two flamegraph aggregations over the union of their paths,
/// sorted by |sim delta| descending (wall delta breaking ties) so the
/// biggest regression — or win — is line one.
#[must_use]
pub fn diff(a: &[PathAgg], b: &[PathAgg]) -> Vec<DiffRow> {
    let mut rows: BTreeMap<&str, DiffRow> = BTreeMap::new();
    for agg in a {
        rows.insert(
            &agg.path,
            DiffRow {
                path: agg.path.clone(),
                count_a: agg.count,
                count_b: 0,
                sim_a: agg.incl_sim_ms,
                sim_b: 0.0,
                wall_a: agg.incl_wall_us,
                wall_b: 0,
            },
        );
    }
    for agg in b {
        let row = rows.entry(&agg.path).or_insert_with(|| DiffRow {
            path: agg.path.clone(),
            count_a: 0,
            count_b: 0,
            sim_a: 0.0,
            sim_b: 0.0,
            wall_a: 0,
            wall_b: 0,
        });
        row.count_b = agg.count;
        row.sim_b = agg.incl_sim_ms;
        row.wall_b = agg.incl_wall_us;
    }
    let mut out: Vec<DiffRow> = rows.into_values().collect();
    out.sort_by(|x, y| {
        y.sim_delta()
            .abs()
            .partial_cmp(&x.sim_delta().abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| y.wall_delta().abs().cmp(&x.wall_delta().abs()))
            .then_with(|| x.path.cmp(&y.path))
    });
    out
}

/// Renders a diff as a sorted text table (`top` 0 = all).
#[must_use]
pub fn render_diff(rows: &[DiffRow], top: usize) -> String {
    let shown = if top == 0 {
        rows.len()
    } else {
        top.min(rows.len())
    };
    let mut out = String::new();
    out.push_str("trace diff, B - A (by |sim-ms delta| desc)\n");
    out.push_str(&format!(
        "{:>14} {:>14} {:>12} {:>12} {:>7} {:>7}  {}\n",
        "sim-ms A", "sim-ms B", "Δ sim-ms", "Δ wall-us", "cnt A", "cnt B", "path"
    ));
    for r in &rows[..shown] {
        out.push_str(&format!(
            "{:>14.2} {:>14.2} {:>+12.2} {:>+12} {:>7} {:>7}  {}\n",
            r.sim_a,
            r.sim_b,
            r.sim_delta(),
            r.wall_delta(),
            r.count_a,
            r.count_b,
            r.path
        ));
    }
    if shown < rows.len() {
        out.push_str(&format!("  ... {} more paths\n", rows.len() - shown));
    }
    out
}

// ---------------------------------------------------------------------------
// One-shot summary
// ---------------------------------------------------------------------------

/// A one-shot overview: the check report, the top flamegraph paths, and
/// (when `engine.job` spans exist) the critical path — what
/// `rustbrain trace summarize` prints.
#[must_use]
pub fn render_summary(spans: &[TraceSpan], tree: &SpanTree) -> String {
    let report = check(spans, &CheckOptions::default());
    let aggs = flamegraph(tree);
    let classes = class_breakdown(tree);
    let mut out = report.render();
    out.push('\n');
    out.push_str(&render_flamegraph(&aggs, &classes, 10));
    let cp = critical_path(tree);
    if !cp.lanes.is_empty() {
        out.push('\n');
        out.push_str(&cp.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &str, sim: f64, wall: u64) -> TraceSpan {
        TraceSpan {
            id,
            parent,
            name: name.to_owned(),
            t_us: id * 10,
            wall_us: wall,
            sim_ms: sim,
            tags: Vec::new(),
        }
    }

    fn job(id: u64, worker: &str, stolen: bool, sim: f64, wall: u64) -> TraceSpan {
        let mut s = span(id, None, "engine.job", sim, wall);
        s.tags.push(("worker".to_owned(), worker.to_owned()));
        s.tags.push(("stolen".to_owned(), stolen.to_string()));
        s
    }

    #[test]
    fn parses_a_tracer_line_and_round_trips() {
        let line = r#"{"id":3,"parent":2,"name":"repair","t_us":120,"wall_us":857,"sim_ms":6423.5000,"tags":{"case":"panic-0","class":"panic"}}"#;
        let s = parse_line(line, 1).unwrap();
        assert_eq!(s.id, 3);
        assert_eq!(s.parent, Some(2));
        assert_eq!(s.name, "repair");
        assert_eq!(s.tag("class"), Some("panic"));
        assert_eq!(s.to_json_line(), line);
    }

    #[test]
    fn truncated_and_corrupt_lines_are_typed_errors() {
        let cases = [
            r#"{"id":3,"parent":2,"name":"re"#, // mid-string tear
            r#"{"id":3,"parent":2,"#,           // mid-object tear
            r#"{"id":3,"parent":2}"#,           // missing fields
            r#"{"id":"three","parent":null,"name":"x","t_us":0,"wall_us":0,"sim_ms":0.0,"tags":{}}"#,
            "[1,2,3]",
            "garbage",
            "",
        ];
        for text in cases {
            if text.is_empty() {
                assert!(read_str(text).unwrap().is_empty());
                continue;
            }
            let err = parse_line(text, 7);
            assert!(err.is_err(), "{text:?} parsed");
            match err.unwrap_err() {
                AnalyzeError::Json { line, .. } | AnalyzeError::Field { line, .. } => {
                    assert_eq!(line, 7);
                }
                other => panic!("unexpected error kind for {text:?}: {other}"),
            }
        }
    }

    #[test]
    fn reader_skips_blank_lines_and_reports_utf8() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(
            br#"{"id":1,"parent":null,"name":"a","t_us":0,"wall_us":5,"sim_ms":1.0,"tags":{}}"#,
        );
        bytes.extend_from_slice(b"\n\n");
        bytes.extend_from_slice(b"\xff\xfe bad utf8\n");
        let results: Vec<_> = SpanReader::new(&bytes[..]).collect();
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(AnalyzeError::Utf8 { line: 3 }));
    }

    #[test]
    fn tree_rejects_duplicates_dangles_and_cycles() {
        let dup = vec![span(1, None, "a", 0.0, 0), span(1, None, "b", 0.0, 0)];
        assert!(matches!(
            SpanTree::build(dup),
            Err(AnalyzeError::Tree { .. })
        ));
        let dangle = vec![span(2, Some(9), "a", 0.0, 0)];
        assert!(matches!(
            SpanTree::build(dangle),
            Err(AnalyzeError::Tree { .. })
        ));
        let cycle = vec![span(1, Some(2), "a", 0.0, 0), span(2, Some(1), "b", 0.0, 0)];
        assert!(matches!(
            SpanTree::build(cycle),
            Err(AnalyzeError::Tree { .. })
        ));
    }

    #[test]
    fn check_flags_uncovered_repairs_and_missing_kinds() {
        let spans = vec![
            span(1, None, "repair", 100.0, 50),
            span(2, Some(1), "fast", 50.0, 20),
        ];
        let report = check(&spans, &CheckOptions::default());
        assert!(!report.ok(), "50% coverage passed a 95% gate");
        assert_eq!(report.repairs, 1);
        assert!((report.min_repair_coverage - 0.5).abs() < 1e-12);

        let covered = vec![
            span(1, None, "repair", 100.0, 50),
            span(2, Some(1), "fast", 99.0, 20),
        ];
        let report = check(&covered, &CheckOptions::default());
        assert!(report.ok(), "{:?}", report.violations);

        let opts = CheckOptions {
            require_names: vec!["engine.job".to_owned()],
            ..CheckOptions::default()
        };
        let report = check(&covered, &opts);
        assert!(!report.ok(), "missing engine.job passed");

        let report = check(&[], &CheckOptions::default());
        assert!(!report.ok(), "empty trace passed");
    }

    #[test]
    fn flamegraph_rolls_up_inclusive_and_self() {
        let mut root = span(1, None, "engine.job", 100.0, 1000);
        root.tags.push(("class".to_owned(), "alloc".to_owned()));
        let spans = vec![
            root,
            span(2, Some(1), "repair", 100.0, 800),
            span(3, Some(2), "fast", 60.0, 300),
            span(4, Some(2), "kb.consult", 40.0, 100),
        ];
        let tree = SpanTree::build(spans).unwrap();
        let aggs = flamegraph(&tree);
        let by_path: BTreeMap<&str, &PathAgg> = aggs.iter().map(|a| (a.path.as_str(), a)).collect();
        let repair = by_path["engine.job;repair"];
        assert!((repair.incl_sim_ms - 100.0).abs() < 1e-12);
        assert!((repair.self_sim_ms - 0.0).abs() < 1e-12);
        assert_eq!(repair.self_wall_us, 400);
        let job = by_path["engine.job"];
        assert!((job.self_sim_ms - 0.0).abs() < 1e-12);
        assert_eq!(job.incl_wall_us, 1000);
        // Self times sum to the trace totals.
        let self_sim: f64 = aggs.iter().map(|a| a.self_sim_ms).sum();
        assert!((self_sim - 100.0).abs() < 1e-9);
        // The class inherits down to untagged children.
        let classes = class_breakdown(&tree);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].class, "alloc");
        assert_eq!(classes[0].count, 4);
        assert!((classes[0].self_sim_ms - 100.0).abs() < 1e-9);
        // Collapsed output charges self time only.
        let collapsed = render_collapsed(&aggs, Measure::Sim);
        assert!(collapsed.contains("engine.job;repair;fast 60000"));
        assert!(!collapsed.contains("engine.job;repair 100000"));
    }

    #[test]
    fn critical_path_bounds_match_hand_math() {
        // 4 lanes, balanced: 4 jobs of 10 each per lane, one stolen.
        let mut spans = Vec::new();
        let mut id = 0;
        for w in 0..4u64 {
            for j in 0..4u64 {
                id += 1;
                spans.push(job(id, &w.to_string(), w == 3 && j == 3, 10.0, 10_000));
            }
        }
        let tree = SpanTree::build(spans).unwrap();
        let cp = critical_path(&tree);
        assert_eq!(cp.jobs, 16);
        assert_eq!(cp.stolen, 1);
        assert_eq!(cp.lanes.len(), 4);
        assert!((cp.speedup_bound_sim() - 4.0).abs() < 1e-12);
        assert!((cp.speedup_bound_wall() - 4.0).abs() < 1e-12);
        assert!((cp.ideal_speedup_sim() - 16.0).abs() < 1e-12);
        // Imbalance drops the bound: pile one more job on lane 0.
        let mut spans: Vec<TraceSpan> = tree.spans().to_vec();
        spans.push(job(99, "0", false, 40.0, 40_000));
        let cp = critical_path(&SpanTree::build(spans).unwrap());
        assert!((cp.speedup_bound_sim() - 200.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn diff_sorts_by_regression_magnitude() {
        let a = vec![
            PathAgg {
                path: "x".into(),
                count: 1,
                incl_sim_ms: 100.0,
                self_sim_ms: 100.0,
                incl_wall_us: 10,
                self_wall_us: 10,
            },
            PathAgg {
                path: "gone".into(),
                count: 1,
                incl_sim_ms: 5.0,
                self_sim_ms: 5.0,
                incl_wall_us: 1,
                self_wall_us: 1,
            },
        ];
        let b = vec![
            PathAgg {
                path: "x".into(),
                count: 2,
                incl_sim_ms: 160.0,
                self_sim_ms: 160.0,
                incl_wall_us: 25,
                self_wall_us: 25,
            },
            PathAgg {
                path: "new".into(),
                count: 1,
                incl_sim_ms: 7.0,
                self_sim_ms: 7.0,
                incl_wall_us: 2,
                self_wall_us: 2,
            },
        ];
        let rows = diff(&a, &b);
        assert_eq!(rows[0].path, "x");
        assert!((rows[0].sim_delta() - 60.0).abs() < 1e-12);
        assert_eq!(rows[1].path, "new");
        assert_eq!(rows[2].path, "gone");
        assert!((rows[2].sim_delta() + 5.0).abs() < 1e-12);
        let text = render_diff(&rows, 0);
        assert!(text.contains("+60.00"));
    }

    #[test]
    fn summary_renders_without_panicking_on_real_shapes() {
        let spans = vec![
            span(1, None, "engine.job", 100.0, 1000),
            span(2, Some(1), "repair", 100.0, 800),
            span(3, Some(2), "fast", 100.0, 300),
        ];
        let tree = SpanTree::build(spans.clone()).unwrap();
        let text = render_summary(&spans, &tree);
        assert!(text.contains("spans: 3"));
        assert!(text.contains("flamegraph"));
    }
}
