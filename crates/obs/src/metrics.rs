//! A process-wide metrics registry: counters, gauges and fixed-bucket
//! histograms, with Prometheus-style text exposition and a JSON dump.
//!
//! Every metric is keyed by a name plus at most one label pair (enough
//! for the stack's `{class=...}` / `{verb=...}` breakdowns without an
//! allocation-happy label map). The process-global registry is reached
//! through [`metrics`]; components that need hermetic counts (the serve
//! daemon's per-server stats) construct their own [`MetricsRegistry`].
//!
//! Histograms use fixed, caller-supplied bucket bounds so merging and
//! exposition never resample: [`SIM_MS_BUCKETS`] for simulated repair
//! latencies, [`REAL_US_BUCKETS`] for wall-clock microseconds. Non-finite
//! observations never reach an exposition — they are dropped and tallied
//! under the `obs_nonfinite_samples_total` counter instead.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Bucket upper bounds (inclusive) for simulated-millisecond latencies.
/// Spans the cost model's range: a fast-path consult is tens to hundreds
/// of ms, one slow-thinking step is 3000+, multi-solution repairs reach
/// tens of thousands.
pub const SIM_MS_BUCKETS: &[f64] = &[
    10.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0,
    100_000.0,
];

/// Bucket upper bounds (inclusive) for wall-clock microsecond latencies
/// (oracle judgements, engine jobs, serve requests).
pub const REAL_US_BUCKETS: &[f64] = &[
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    50_000.0,
    100_000.0,
    500_000.0,
    1_000_000.0,
];

/// Name + optional single label pair — the registry key.
type Key = (String, Option<(String, String)>);

fn key(name: &str, label: Option<(&str, &str)>) -> Key {
    (
        name.to_owned(),
        label.map(|(k, v)| (k.to_owned(), v.to_owned())),
    )
}

/// One fixed-bucket histogram: per-bucket counts (non-cumulative), total
/// sum and total count. Returned by [`MetricsRegistry::histogram`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds, ascending; an implicit `+Inf` bucket follows.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts, `bounds.len() + 1` long (last is the
    /// overflow bucket).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

#[derive(Clone, Debug)]
struct Histo {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, Histo>,
}

/// A registry of counters, gauges and histograms. Thread-safe; cheap to
/// share behind an [`Arc`].
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        // Non-finite values never reach an exposition.
        "0.0000".to_owned()
    }
}

fn fmt_bound(b: f64) -> String {
    if b == b.trunc() && b.abs() < 1e15 {
        format!("{b:.0}")
    } else {
        format!("{b}")
    }
}

fn series_name(name: &str, label: &Option<(String, String)>) -> String {
    match label {
        None => name.to_owned(),
        Some((k, v)) => format!("{name}{{{k}=\"{v}\"}}"),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Observability must not take the process down on a panic
        // elsewhere; a poisoned registry keeps counting.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Adds `delta` to a counter (created at zero on first touch).
    pub fn counter_add(&self, name: &str, label: Option<(&str, &str)>, delta: u64) {
        *self.lock().counters.entry(key(name, label)).or_insert(0) += delta;
    }

    /// Reads a counter (zero if never touched).
    #[must_use]
    pub fn counter(&self, name: &str, label: Option<(&str, &str)>) -> u64 {
        self.lock()
            .counters
            .get(&key(name, label))
            .copied()
            .unwrap_or(0)
    }

    /// Sets a gauge to `value` (non-finite values are dropped).
    pub fn gauge_set(&self, name: &str, label: Option<(&str, &str)>, value: f64) {
        if !value.is_finite() {
            self.counter_add("obs_nonfinite_samples_total", None, 1);
            return;
        }
        self.lock().gauges.insert(key(name, label), value);
    }

    /// Reads a gauge, if it was ever set.
    #[must_use]
    pub fn gauge(&self, name: &str, label: Option<(&str, &str)>) -> Option<f64> {
        self.lock().gauges.get(&key(name, label)).copied()
    }

    /// Observes `value` into a fixed-bucket histogram. The first
    /// observation fixes the bucket bounds; later `bounds` arguments for
    /// the same series are ignored. Non-finite values are dropped and
    /// tallied under `obs_nonfinite_samples_total`.
    pub fn observe(&self, name: &str, label: Option<(&str, &str)>, value: f64, bounds: &[f64]) {
        if !value.is_finite() {
            self.counter_add("obs_nonfinite_samples_total", None, 1);
            return;
        }
        let mut inner = self.lock();
        let h = inner
            .histograms
            .entry(key(name, label))
            .or_insert_with(|| Histo {
                bounds: bounds.to_vec(),
                counts: vec![0; bounds.len() + 1],
                sum: 0.0,
                count: 0,
            });
        let idx = h
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(h.bounds.len());
        h.counts[idx] += 1;
        h.sum += value;
        h.count += 1;
    }

    /// Snapshot of one histogram series, if it has any observations.
    #[must_use]
    pub fn histogram(&self, name: &str, label: Option<(&str, &str)>) -> Option<HistogramSnapshot> {
        self.lock()
            .histograms
            .get(&key(name, label))
            .map(|h| HistogramSnapshot {
                bounds: h.bounds.clone(),
                counts: h.counts.clone(),
                sum: h.sum,
                count: h.count,
            })
    }

    /// The label values seen for `name` across all metric kinds — e.g.
    /// the UB classes a repair-latency histogram has touched.
    #[must_use]
    pub fn label_values(&self, name: &str) -> Vec<String> {
        let inner = self.lock();
        let mut out: Vec<String> = inner
            .counters
            .keys()
            .chain(inner.gauges.keys())
            .chain(inner.histograms.keys())
            .filter(|(n, _)| n == name)
            .filter_map(|(_, l)| l.as_ref().map(|(_, v)| v.clone()))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Prometheus-style text exposition: counters and gauges as single
    /// sample lines, histograms as cumulative `_bucket{le=...}` series
    /// plus `_sum` and `_count`. Deterministic ordering (sorted by
    /// series key).
    #[must_use]
    pub fn prometheus(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for ((name, label), v) in &inner.counters {
            out.push_str(&format!("{} {v}\n", series_name(name, label)));
        }
        for ((name, label), v) in &inner.gauges {
            out.push_str(&format!("{} {}\n", series_name(name, label), fmt_value(*v)));
        }
        for ((name, label), h) in &inner.histograms {
            let mut cumulative = 0u64;
            for (i, bound) in h.bounds.iter().enumerate() {
                cumulative += h.counts[i];
                let series = match label {
                    None => format!("{name}_bucket{{le=\"{}\"}}", fmt_bound(*bound)),
                    Some((k, v)) => {
                        format!("{name}_bucket{{{k}=\"{v}\",le=\"{}\"}}", fmt_bound(*bound))
                    }
                };
                out.push_str(&format!("{series} {cumulative}\n"));
            }
            let series = match label {
                None => format!("{name}_bucket{{le=\"+Inf\"}}"),
                Some((k, v)) => format!("{name}_bucket{{{k}=\"{v}\",le=\"+Inf\"}}"),
            };
            out.push_str(&format!("{series} {}\n", h.count));
            out.push_str(&format!(
                "{} {}\n",
                series_name(&format!("{name}_sum"), label),
                fmt_value(h.sum)
            ));
            out.push_str(&format!(
                "{} {}\n",
                series_name(&format!("{name}_count"), label),
                h.count
            ));
        }
        out
    }

    /// JSON dump of the whole registry: `{"counters":{...},"gauges":
    /// {...},"histograms":{"name":{"sum":...,"count":...,"buckets":
    /// [[le,count],...]}}}`, keys in deterministic order, histogram
    /// buckets non-cumulative with an `"inf"` overflow entry.
    #[must_use]
    pub fn to_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::from("{\"counters\":{");
        for (i, ((name, label), v)) in inner.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_escape(&series_name(name, label)));
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, ((name, label), v)) in inner.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_escape(&series_name(name, label)));
            out.push(':');
            out.push_str(&fmt_value(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, ((name, label), h)) in inner.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_escape(&series_name(name, label)));
            out.push_str(":{\"sum\":");
            out.push_str(&fmt_value(h.sum));
            out.push_str(",\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"buckets\":[");
            for (j, bound) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "[{},{}]",
                    json_escape(&fmt_bound(*bound)),
                    h.counts[j]
                ));
            }
            if !h.bounds.is_empty() {
                out.push(',');
            }
            out.push_str(&format!("[\"inf\",{}]", h.counts[h.bounds.len()]));
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Whether the registry holds no series at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let inner = self.lock();
        inner.counters.is_empty() && inner.gauges.is_empty() && inner.histograms.is_empty()
    }
}

static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();

fn global() -> &'static Arc<MetricsRegistry> {
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

/// The process-global registry — where the repair pipeline, oracle seam,
/// knowledge base and engine record.
#[must_use]
pub fn metrics() -> &'static MetricsRegistry {
    global()
}

/// A shared handle on the process-global registry (for components that
/// store the registry, like the serve daemon's exposition endpoint).
#[must_use]
pub fn metrics_arc() -> Arc<MetricsRegistry> {
    Arc::clone(global())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.counter("hits", None), 0);
        reg.counter_add("hits", None, 2);
        reg.counter_add("hits", None, 3);
        reg.counter_add("hits", Some(("class", "panic")), 1);
        assert_eq!(reg.counter("hits", None), 5);
        assert_eq!(reg.counter("hits", Some(("class", "panic"))), 1);
        reg.gauge_set("depth", None, 2.5);
        reg.gauge_set("depth", None, 3.5);
        assert_eq!(reg.gauge("depth", None), Some(3.5));
        let text = reg.prometheus();
        assert!(text.contains("hits 5\n"), "{text}");
        assert!(text.contains("hits{class=\"panic\"} 1\n"), "{text}");
        assert!(text.contains("depth 3.5000\n"), "{text}");
    }

    #[test]
    fn histogram_buckets_fill_and_expose_cumulatively() {
        let reg = MetricsRegistry::new();
        let bounds = &[10.0, 100.0];
        reg.observe("lat", Some(("class", "alloc")), 5.0, bounds);
        reg.observe("lat", Some(("class", "alloc")), 10.0, bounds); // inclusive bound
        reg.observe("lat", Some(("class", "alloc")), 50.0, bounds);
        reg.observe("lat", Some(("class", "alloc")), 1e9, bounds); // overflow
        let h = reg.histogram("lat", Some(("class", "alloc"))).unwrap();
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 1_000_000_065.0).abs() < 1e-6);
        let text = reg.prometheus();
        assert!(
            text.contains("lat_bucket{class=\"alloc\",le=\"10\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_bucket{class=\"alloc\",le=\"100\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_bucket{class=\"alloc\",le=\"+Inf\"} 4\n"),
            "{text}"
        );
        assert!(text.contains("lat_count{class=\"alloc\"}"), "{text}");
        assert_eq!(reg.label_values("lat"), vec!["alloc".to_owned()]);
    }

    #[test]
    fn non_finite_samples_are_dropped_not_emitted() {
        let reg = MetricsRegistry::new();
        reg.observe("lat", None, f64::NAN, SIM_MS_BUCKETS);
        reg.observe("lat", None, f64::INFINITY, SIM_MS_BUCKETS);
        reg.gauge_set("g", None, f64::NEG_INFINITY);
        assert!(reg.histogram("lat", None).is_none());
        assert_eq!(reg.gauge("g", None), None);
        assert_eq!(reg.counter("obs_nonfinite_samples_total", None), 3);
        let text = reg.prometheus();
        assert!(!text.contains("NaN") && !text.contains("inf{"), "{text}");
        let json = reg.to_json();
        assert!(
            !json.contains("NaN") && !json.contains("Infinity"),
            "{json}"
        );
    }

    #[test]
    fn json_dump_is_parseable_shape() {
        let reg = MetricsRegistry::new();
        reg.counter_add("a_total", None, 1);
        reg.gauge_set("g", Some(("k", "v")), 1.0);
        reg.observe("h", None, 3.0, &[10.0]);
        let json = reg.to_json();
        assert!(json.starts_with("{\"counters\":{"), "{json}");
        assert!(json.contains("\"a_total\":1"), "{json}");
        assert!(json.contains("\"g{k=\\\"v\\\"}\":1.0000"), "{json}");
        assert!(
            json.contains(
                "\"h\":{\"sum\":3.0000,\"count\":1,\"buckets\":[[\"10\",1],[\"inf\",0]]}"
            ),
            "{json}"
        );
        // Balanced braces (cheap well-formedness check; the serve crate's
        // real parser covers this end to end in its tests).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn global_registry_is_shared() {
        let a = metrics_arc();
        metrics().counter_add("obs_global_smoke_total", None, 1);
        assert!(a.counter("obs_global_smoke_total", None) >= 1);
    }
}
