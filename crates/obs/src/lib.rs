//! `rb_obs` — the observability spine of the RustBrain reproduction.
//!
//! Two halves, both dependency-free so every crate in the stack (down to
//! the oracle seam in `rb_miri`) can report through one layout without
//! cycles:
//!
//! - [`trace`]: structured span tracing. A [`trace::Tracer`] owns a
//!   thread-safe sink (a JSONL file or an in-memory buffer); installing
//!   it on a thread with [`trace::scope`] makes [`trace::span`] emit one
//!   JSON object per finished span — name, parent span, wall-clock and
//!   simulated-millisecond durations, free-form tags. When no tracer is
//!   installed, spans are inert no-ops, so instrumented code pays only a
//!   thread-local read on the untraced path.
//! - [`metrics`]: a process-wide registry of counters, gauges and
//!   fixed-bucket histograms ([`metrics::metrics`]), with Prometheus-style
//!   text exposition and a JSON dump. Call sites are free to record into
//!   a private registry instead (the serve daemon does, to keep its
//!   per-server counters hermetic).
//!
//! On top of the emitting half sits [`analyze`]: a streaming JSONL trace
//! reader with typed errors (never panics on truncated or corrupt
//! input), a span-tree builder that re-validates the tracer's contract,
//! and flamegraph / critical-path / trace-diff analyses — the read side
//! that `rustbrain trace` exposes on the command line.
//!
//! The cardinal rule of both halves: **observe, never perturb**. Nothing
//! in this crate feeds back into repair decisions, simulated costs, or
//! result bytes — enabling tracing or metrics must leave every result
//! stream byte-identical.

pub mod analyze;
pub mod metrics;
pub mod trace;

pub use analyze::{AnalyzeError, SpanTree, TraceSpan};
pub use metrics::{metrics, metrics_arc, MetricsRegistry, REAL_US_BUCKETS, SIM_MS_BUCKETS};
pub use trace::{event, scope, span, ScopeGuard, Span, Tracer};
