//! Repair campaign: the scenario from the paper's introduction — a project
//! full of unsafe code whose Miri findings need triaging. We generate a
//! corpus covering every UB class, point RustBrain at it, and print a
//! per-class triage summary.
//!
//! ```sh
//! cargo run --release --example repair_campaign
//! ```

use rb_dataset::Corpus;
use rb_llm::ModelId;
use rb_miri::UbClass;
use rustbrain::{RustBrain, RustBrainConfig};
use std::collections::BTreeMap;

fn main() {
    let corpus = Corpus::generate_full(2026, 3);
    println!(
        "campaign corpus: {} UB findings across {} classes (mean {:.1} stmts/program)\n",
        corpus.len(),
        corpus.stats().len(),
        corpus.mean_stmts()
    );

    let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 7));
    let mut per_class: BTreeMap<UbClass, (usize, usize, usize, f64)> = BTreeMap::new();

    for case in &corpus.cases {
        let outcome = brain.repair(&case.buggy, &case.gold_outputs());
        let entry = per_class.entry(case.class).or_insert((0, 0, 0, 0.0));
        entry.0 += 1;
        if outcome.passed {
            entry.1 += 1;
        }
        if outcome.acceptable {
            entry.2 += 1;
        }
        entry.3 += outcome.overhead_ms / 1000.0;
    }

    println!(
        "{:<18}{:>7}{:>8}{:>8}{:>12}",
        "class", "cases", "passed", "accept", "mean time"
    );
    let (mut total, mut passed, mut accepted) = (0, 0, 0);
    for (class, (n, p, a, t)) in &per_class {
        println!(
            "{:<18}{:>7}{:>8}{:>8}{:>11.1}s",
            class.label(),
            n,
            p,
            a,
            t / *n as f64
        );
        total += n;
        passed += p;
        accepted += a;
    }
    println!(
        "\ncampaign result: {passed}/{total} pass Miri ({:.1}%), {accepted}/{total} \
         semantically acceptable ({:.1}%)",
        100.0 * passed as f64 / total as f64,
        100.0 * accepted as f64 / total as f64
    );
    println!(
        "knowledge base now holds {} solved cases; feedback updated priors {} times",
        brain.knowledge().len(),
        brain.priors().updates()
    );
}
