//! Self-learning demonstration (the red sections of the paper's Table I):
//! when a stream of *similar* UBs arrives, the feedback mechanism and the
//! knowledge base make later repairs faster and less dependent on search.
//!
//! ```sh
//! cargo run --release --example knowledge_reuse
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rb_dataset::{templates_for, UbCase};
use rb_llm::ModelId;
use rb_miri::UbClass;
use rustbrain::{RustBrain, RustBrainConfig};

fn main() {
    // Ten instances of the same defect family with varying identifiers and
    // constants — the "similar UBs" stream of the paper's discussion.
    let template = templates_for(UbClass::DanglingPointer)
        .into_iter()
        .find(|t| t.name == "scope_escape")
        .expect("template exists");
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let cases: Vec<UbCase> = (0..10)
        .map(|i| {
            let s = (template.make)(&mut rng);
            UbCase::from_sources(
                format!("stream/scope_escape/{i}"),
                UbClass::DanglingPointer,
                template.name,
                &s.buggy,
                &s.gold,
                &s.description,
            )
        })
        .collect();

    let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 3));
    println!(
        "{:<26}{:>7}{:>9}{:>11}{:>12}{:>10}",
        "case", "pass", "accept", "time (s)", "solutions", "KB size"
    );
    let mut times = Vec::new();
    for case in &cases {
        let outcome = brain.repair(&case.buggy, &case.gold_outputs());
        times.push(outcome.overhead_ms / 1000.0);
        println!(
            "{:<26}{:>7}{:>9}{:>10.1}{:>12}{:>10}",
            case.id,
            outcome.passed,
            outcome.acceptable,
            outcome.overhead_ms / 1000.0,
            outcome.solutions_tried,
            brain.knowledge().len()
        );
    }
    let first = times.first().copied().unwrap_or(0.0);
    let later: f64 =
        times[times.len() / 2..].iter().sum::<f64>() / (times.len() - times.len() / 2) as f64;
    println!(
        "\nfirst repair: {first:.1}s; mean of later half: {later:.1}s \
         (self-learning should not make repeats slower)"
    );
    println!(
        "priors updated {} times; remembered best solution for the class: {}",
        brain.priors().updates(),
        brain
            .priors()
            .best_solution(UbClass::DanglingPointer)
            .map_or("none".to_owned(), |s| rustbrain::Solution::new(s.to_vec())
                .describe())
    );
}
