//! UB explorer: the oracle as a standalone analysis tool. Feeds a gallery
//! of classic unsafe-Rust defects through the Miri-style oracle and prints
//! each classified diagnostic — a tour of the fourteen UB classes the
//! paper's evaluation covers.
//!
//! ```sh
//! cargo run --release --example ub_explorer
//! ```

use rb_lang::parser::parse_program;
use rb_miri::run_program;

fn main() {
    let gallery: Vec<(&str, &str)> = vec![
        (
            "dangling pointer (scope escape)",
            "fn main() { let q: *const i32 = 0 as *const i32; \
             { let x: i32 = 5; q = &raw const x; } unsafe { print(*q); } }",
        ),
        (
            "double free",
            "fn main() { unsafe { let p: *mut u8 = alloc(4usize, 4usize); \
             dealloc(p, 4usize, 4usize); dealloc(p, 4usize, 4usize); } }",
        ),
        (
            "uninitialised read",
            "fn main() { unsafe { let p: *mut u8 = alloc(4usize, 4usize); \
             print(ptr_read::<i32>(p as *const i32)); dealloc(p, 4usize, 4usize); } }",
        ),
        (
            "provenance laundering",
            "fn main() { let x: i32 = 7; let p: *const i32 = &raw const x; \
             let a: usize = p as usize; let q: *const i32 = a as *const i32; \
             unsafe { print(*q); } }",
        ),
        (
            "misaligned access",
            "fn main() { unsafe { let p: *mut u8 = alloc(8usize, 8usize); \
             print(ptr_read::<u32>(ptr_offset::<u8>(p, 1i32) as *const u32)); \
             dealloc(p, 8usize, 8usize); } }",
        ),
        (
            "invalid bool (validity)",
            "fn main() { unsafe { print(transmute::<u8, bool>(3u8)); } }",
        ),
        (
            "stacked-borrows violation",
            "fn main() { let x: i32 = 1; unsafe { let p: *const i32 = &raw const x; \
             x = 2; print(ptr_read::<i32>(p)); } }",
        ),
        (
            "conflicting &mut (both borrows)",
            "fn main() { let x: i32 = 1; unsafe { let a: &mut i32 = &mut x; \
             let b: &mut i32 = &mut x; *b = 2; print(*a); } }",
        ),
        (
            "data race on a static",
            "static mut G: i32 = 0; fn main() { spawn { unsafe { G = 1; } } \
             spawn { unsafe { G = 2; } } join; }",
        ),
        (
            "unchecked arithmetic contract (func.call)",
            "fn main() { unsafe { print(unchecked_add::<i32>(2147483647i32, 1i32)); } }",
        ),
        (
            "forged function pointer",
            "fn main() { unsafe { \
             let f: fn(i32) -> i32 = transmute::<usize, fn(i32) -> i32>(4096usize); \
             print((f)(1)); } }",
        ),
        (
            "tail-call signature mismatch",
            "fn helper(x: i32, y: i32) -> i32 { return x + y; } \
             fn runner(x: i32) -> i32 { tailcall helper(x, 1); } \
             fn main() { print(runner(1)); }",
        ),
        (
            "panic (assert)",
            "fn main() { let v: i32 = 3; assert(v > 100, \"too small\"); print(v); }",
        ),
        (
            "heap race (concurrency)",
            "fn main() { let p: *mut u8 = 0 as *mut u8; \
             unsafe { p = alloc(4usize, 4usize); ptr_write::<i32>(p as *mut i32, 0i32); } \
             spawn { unsafe { ptr_write::<i32>(p as *mut i32, 1i32); } } \
             spawn { unsafe { ptr_write::<i32>(p as *mut i32, 2i32); } } \
             join; unsafe { dealloc(p, 4usize, 4usize); } }",
        ),
    ];

    println!(
        "UB explorer — {} classic defects through the oracle\n",
        gallery.len()
    );
    for (name, src) in gallery {
        let program = parse_program(src).expect("gallery programs parse");
        let report = run_program(&program);
        println!("--- {name} ---");
        if report.passes() {
            println!("unexpectedly clean!");
        }
        for err in &report.errors {
            println!("  {err}");
        }
        if !report.outputs.is_empty() {
            println!(
                "  (partial output before/around the error: {:?})",
                report.outputs
            );
        }
        println!();
    }
}
