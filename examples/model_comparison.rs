//! Model comparison: every simulated model with and without RustBrain on
//! the same corpus — a miniature of the paper's Figs. 8/9.
//!
//! ```sh
//! cargo run --release --example model_comparison
//! ```

use rb_baselines::LlmOnly;
use rb_dataset::Corpus;
use rb_llm::ModelId;
use rb_miri::UbClass;
use rustbrain::{RustBrain, RustBrainConfig};

fn main() {
    let corpus = Corpus::generate(7, 4, &UbClass::FIG8);
    println!(
        "corpus: {} cases over {} classes\n",
        corpus.len(),
        UbClass::FIG8.len()
    );
    println!(
        "{:<26}{:>8}{:>8}{:>12}",
        "configuration", "pass", "exec", "mean time"
    );

    for model in ModelId::ALL {
        let mut alone = LlmOnly::new(model, 0.5, 1);
        let (mut pass, mut exec, mut time) = (0usize, 0usize, 0.0f64);
        for case in &corpus.cases {
            let o = alone.repair(&case.buggy, &case.gold_outputs());
            pass += usize::from(o.passed);
            exec += usize::from(o.acceptable);
            time += o.overhead_ms;
        }
        println!(
            "{:<26}{:>7.1}%{:>7.1}%{:>11.1}s",
            format!("{} (alone)", model.label()),
            100.0 * pass as f64 / corpus.len() as f64,
            100.0 * exec as f64 / corpus.len() as f64,
            time / 1000.0 / corpus.len() as f64
        );
    }
    println!();
    for model in ModelId::ALL {
        let mut brain = RustBrain::new(RustBrainConfig::for_model(model, 1));
        let (mut pass, mut exec, mut time) = (0usize, 0usize, 0.0f64);
        for case in &corpus.cases {
            let o = brain.repair(&case.buggy, &case.gold_outputs());
            pass += usize::from(o.passed);
            exec += usize::from(o.acceptable);
            time += o.overhead_ms;
        }
        println!(
            "{:<26}{:>7.1}%{:>7.1}%{:>11.1}s",
            format!("{} + RustBrain", model.label()),
            100.0 * pass as f64 / corpus.len() as f64,
            100.0 * exec as f64 / corpus.len() as f64,
            time / 1000.0 / corpus.len() as f64
        );
    }
}
