//! Quickstart: detect undefined behaviour in an unsafe-Rust program with
//! the oracle, then let RustBrain repair it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rb_lang::parser::parse_program;
use rb_lang::printer::print_program;
use rb_llm::ModelId;
use rb_miri::run_program;
use rustbrain::{RustBrain, RustBrainConfig};

fn main() {
    // A classic dangling pointer: the address of `x` escapes its scope.
    let source = "fn main() {
    let q: *const i32 = 0 as *const i32;
    { let x: i32 = 5; q = &raw const x; }
    unsafe { print(*q); }
}";
    let buggy = parse_program(source).expect("program parses");

    println!("== input program ==\n{}", print_program(&buggy));

    // Step 1: the oracle (our Miri substitute) detects the UB.
    let report = run_program(&buggy);
    println!("== oracle report ==\n{report}");
    assert!(!report.passes(), "the input must exhibit UB");

    // Step 2: RustBrain repairs it. The reference output is what the
    // developer-intended program prints (used for semantic judgement).
    let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 42));
    let outcome = brain.repair(&buggy, &["5".to_owned()]);

    println!(
        "== repaired program ==\n{}",
        print_program(&outcome.final_program)
    );
    println!(
        "passed: {} | semantically acceptable: {} | simulated time: {:.1}s | \
         solutions tried: {} | oracle runs: {}",
        outcome.passed,
        outcome.acceptable,
        outcome.overhead_ms / 1000.0,
        outcome.solutions_tried,
        outcome.oracle_runs
    );
    println!(
        "error-count trace (the paper's N sequence): {:?}",
        outcome.error_history
    );
    assert!(
        outcome.passed,
        "RustBrain should repair the quickstart case"
    );
}
