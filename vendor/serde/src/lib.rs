//! Offline stand-in for the `serde` crate.
//!
//! Provides the `Serialize`/`Deserialize` trait names and (behind the
//! `derive` feature) the derive macros, so `use serde::{Deserialize,
//! Serialize}` and `#[derive(Serialize, Deserialize)]` compile without a
//! registry. No actual serialisation framework is provided — nothing in
//! the workspace serialises yet. See `vendor/README.md` for the swap-out
//! plan once a crates.io mirror is reachable.

/// Marker stand-in for `serde::Serialize`.
///
/// The real trait's methods are intentionally absent: the vendored derive
/// expands to nothing, and no code in the workspace requires the bound.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
///
/// See [`Serialize`] for why this carries no methods.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
