//! Offline stand-in for the `criterion` crate.
//!
//! A simple wall-clock microbenchmark harness implementing the API subset
//! the workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::bench_with_input`]
//! and `sample_size`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! auto-calibrated to a short measurement window and reports the median
//! iteration time. No statistics beyond min/median/max, no HTML reports.
//! See `vendor/README.md` for the swap-out plan.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, passed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_owned(),
        }
    }
}

/// Timing loop handle handed to the closure of a benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one timing sample per batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let iters = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.samples.push(start.elapsed() / iters as u32);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibration pass: find an iteration count that keeps each sample
    // fast, so the whole suite stays CI-friendly.
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    let warmup = Instant::now();
    f(&mut bencher);
    let per_iter = warmup.elapsed().max(Duration::from_nanos(1));
    let target = Duration::from_millis(5);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{name:<40} (no samples: closure never called iter)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!("{name:<40} median {median:>12.2?}   min {min:>12.2?}   max {max:>12.2?}");
}

impl Criterion {
    /// Benchmarks `f` under `id`, printing a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` with an input value under a parameterised id.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().name);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&full, samples, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a parameterised id without an input payload.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().name);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&full, samples, f);
        self
    }

    /// Closes the group.
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group: a function list run by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
