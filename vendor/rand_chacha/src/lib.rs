//! Offline stand-in for the `rand_chacha` crate: [`ChaCha8Rng`] is a
//! genuine ChaCha stream cipher with 8 rounds (IETF word layout, 64-bit
//! block counter, zero nonce/stream), not a toy LCG — every statistical
//! property the simulation stack relies on holds. Output words are served
//! in block order, matching the classic ChaCha key-stream. See
//! `vendor/README.md` for the swap-out plan.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A deterministic, seedable ChaCha8 random number generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Buffered key-stream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generates the key-stream block for the current counter into the
    /// buffer and advances the counter.
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_across_clones_and_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let stream_a: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let stream_b: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(stream_a, stream_b);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(
            stream_a,
            (0..32).map(|_| c.next_u64()).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn known_answer_chacha8_zero_key() {
        // ChaCha8 key-stream, all-zero key/nonce, block 0 — first word of
        // the classic known-answer test vector.
        let rng = &mut ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), u32::from_le_bytes([0x3e, 0x00, 0xef, 0x2f]));
    }

    #[test]
    fn f64_samples_in_unit_interval_and_spread() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let xs: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_covers_and_stays_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.gen_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
        for _ in 0..500 {
            let v = rng.gen_range(-4i64..70);
            assert!((-4..70).contains(&v));
        }
    }
}
