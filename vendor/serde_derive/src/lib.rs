//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace has no network access to crates.io, and nothing in the
//! reproduction actually serialises data yet — the `#[derive(Serialize,
//! Deserialize)]` annotations across the crates only declare intent. These
//! derives therefore expand to nothing; swap this vendored crate for the
//! real `serde`/`serde_derive` the day a registry is reachable (see
//! `vendor/README.md`).

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
