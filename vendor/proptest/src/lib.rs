//! Offline stand-in for the `proptest` crate.
//!
//! A miniature property-testing engine implementing the subset of the real
//! API the workspace's tests use: the [`Strategy`] trait with `prop_map`,
//! range / tuple / regex-character-class / `any` / `prop_oneof!` /
//! `prop::collection::vec` strategies, the [`proptest!`] macro with
//! per-block [`ProptestConfig`], and the `prop_assert!` family. Cases are
//! generated from a fixed seed so runs are deterministic; shrinking is not
//! implemented (failures report the concrete inputs instead). See
//! `vendor/README.md` for the swap-out plan.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG driving test-case generation.
pub type TestRng = ChaCha8Rng;

/// Why a single generated test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not be counted.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

/// Outcome of running one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated overall.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A generator of values of an output type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply samples.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// `any::<T>()` — the full-range strategy for a primitive type.
pub struct Any<T>(core::marker::PhantomData<T>);

/// Returns the strategy generating any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),* $(,)?) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A regex-like character-class strategy: `"[class]{min,max}"`.
///
/// Supports exactly the pattern shape the workspace's tests use — one
/// bracketed character class (with `a-z` ranges and literal characters)
/// followed by a `{min,max}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_char_class(self);
        assert!(!chars.is_empty(), "empty character class in {self:?}");
        let len = if max > min {
            rng.gen_range(min..max + 1)
        } else {
            min
        };
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

/// Parses `"[class]{min,max}"` into (alphabet, min, max).
fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
    let inner = pattern
        .strip_prefix('[')
        .and_then(|rest| rest.split_once(']'))
        .unwrap_or_else(|| panic!("unsupported pattern {pattern:?}: expected [class]{{m,n}}"));
    let (class, tail) = inner;
    let (min, max) = if let Some(spec) = tail.strip_prefix('{').and_then(|t| t.strip_suffix('}')) {
        let (lo, hi) = spec.split_once(',').unwrap_or((spec, spec));
        (
            lo.trim().parse().expect("min"),
            hi.trim().parse().expect("max"),
        )
    } else {
        (1, 1)
    };
    let cs: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            for c in cs[i]..=cs[i + 2] {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(cs[i]);
            i += 1;
        }
    }
    (alphabet, min, max)
}

/// Union of boxed strategies, weighted uniformly (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options; at least one is required.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

/// Sub-modules mirroring `proptest::prop::*` paths.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for vectors with length drawn from `len` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `prop::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            element,
            min: len.start,
            max: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max > self.min {
                rng.gen_range(self.min..self.max)
            } else {
                self.min
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs one property: samples cases, skips rejects, panics on failure.
///
/// This is the engine behind the [`proptest!`] macro; call it indirectly.
pub fn run_property<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strategy: &S,
    test: impl Fn(S::Value) -> TestCaseResult,
) where
    S::Value: core::fmt::Debug + Clone,
{
    // Deterministic per-property seed: tests must not flake between runs.
    let mut seed: u64 = 0xcafe_f00d_d15e_a5e5;
    for b in name.bytes() {
        seed = seed
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(u64::from(b));
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let input = strategy.sample(&mut rng);
        let shown = input.clone();
        match test(input) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "property {name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed after {passed} passing case(s)\n  input: {shown:?}\n  {msg}")
            }
        }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Mirrors `proptest::prelude::prop::*`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Rejects the current case (not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the configured number of sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        @cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strategy = ($($strategy,)+);
                $crate::run_property(
                    stringify!($name),
                    &config,
                    &strategy,
                    |($($pat,)+)| -> $crate::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
