//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! Implements exactly the surface the workspace uses — [`RngCore`],
//! [`SeedableRng`] (with the rand_core 0.6 `seed_from_u64` expansion so
//! seeds stay stable if the real crate is ever swapped back in), and the
//! [`Rng`] extension trait with `gen::<f64>()`, `gen::<u64>()`,
//! `gen_bool` and unbiased integer `gen_range`. See `vendor/README.md`.

/// Low-level source of randomness (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A random number generator that can be seeded deterministically
/// (stand-in for `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type, a fixed-size byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with the same PCG32
    /// key-expansion rand_core 0.6 uses, so seed streams match the real
    /// crate family.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the generator's raw output
/// (stand-in for the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (rand 0.8's
    /// `Standard` for `f64`).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u8 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u32() >> 24) as u8
    }
}

impl StandardSample for i64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`; `high` must be greater than
    /// `low`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty => $unsigned:ty),* $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low >= high");
                let span = high.wrapping_sub(low) as $unsigned as u64;
                // Lemire's unbiased multiply-shift method: reject when the
                // low product word falls in the first 2^64 mod span slots.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let m = rng.next_u64() as u128 * span as u128;
                    if (m as u64) >= threshold {
                        return low.wrapping_add((m >> 64) as u64 as $unsigned as $ty);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

/// Extension methods over any [`RngCore`] (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic SplitMix64-ish generator, enough to exercise the
    /// sampling layer without depending on rand_chacha (a dependent crate).
    struct TestRng(u64);

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let raw = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&raw[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_range_reaches_the_whole_span_even_for_huge_spans() {
        // Regression: a buggy rejection test once made values above
        // span/2 unreachable for spans near 2^63.
        let mut rng = TestRng(7);
        let top = (1u64 << 63) + 1;
        let mut above_half = 0;
        for _ in 0..512 {
            let v = rng.gen_range(0u64..top);
            assert!(v < top);
            if v > 1u64 << 62 {
                above_half += 1;
            }
        }
        assert!(
            (96..=416).contains(&above_half),
            "upper half badly under/over-represented: {above_half}/512"
        );
    }

    #[test]
    fn gen_range_is_roughly_uniform_on_small_spans() {
        let mut rng = TestRng(42);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            assert!((800..1200).contains(b), "bucket {i} skewed: {b}");
        }
    }

    #[test]
    fn seed_from_u64_matches_rand_core_expansion() {
        // First four bytes of the rand_core 0.6 PCG32 key expansion for
        // seed 0 — pins the stream so swapping the real crate back in
        // stays transparent.
        struct Capture([u8; 4]);
        impl SeedableRng for Capture {
            type Seed = [u8; 4];
            fn from_seed(seed: [u8; 4]) -> Self {
                Capture(seed)
            }
        }
        let c = Capture::seed_from_u64(0);
        let state = 11_634_580_027_462_260_723u64;
        let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
        let expected = xorshifted.rotate_right((state >> 59) as u32);
        assert_eq!(c.0, expected.to_le_bytes());
    }
}
