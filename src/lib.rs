//! Umbrella crate of the RustBrain reproduction: re-exports the whole
//! stack so the examples and integration tests have one import surface.
//! See the individual crates for the real APIs:
//!
//! - [`rb_lang`] — the mini unsafe-Rust IR,
//! - [`rb_miri`] — the Miri-style UB oracle,
//! - [`rb_dataset`] — the benchmark corpus,
//! - [`rb_llm`] — simulated language models,
//! - [`rb_kb`] — the durable knowledge store (codec, merge policy,
//!   class index, atomic `.rbkb` persistence),
//! - [`rustbrain`] — the fast/slow-thinking repair framework,
//! - [`rb_baselines`] — comparison systems,
//! - [`rb_engine`] — the parallel batch-repair engine and oracle cache,
//! - [`rb_bench`] — the experiment harness,
//! - [`rb_serve`] — the resident repair daemon (line-delimited JSON
//!   over TCP, lazy knowledge shards, triggered compaction).

#![warn(missing_docs)]

pub use rb_baselines;
pub use rb_bench;
pub use rb_dataset;
pub use rb_engine;
pub use rb_kb;
pub use rb_lang;
pub use rb_llm;
pub use rb_miri;
pub use rb_serve;
pub use rustbrain;
