//! `rustbrain` — command-line UB detection and repair.
//!
//! ```text
//! USAGE:
//!   rustbrain check  <file.mrs>                 run the UB oracle only
//!   rustbrain analyze <file.mrs|--corpus>       static UB lint (`rb_lint`):
//!                                               findings with class, rule and
//!                                               confidence, no oracle run;
//!                                               `--corpus` sweeps the seed
//!                                               corpus (agreement table +
//!                                               repair-rule audit)
//!   rustbrain repair <file.mrs> [options]       detect and repair
//!   rustbrain demo                              repair a built-in example
//!   rustbrain corpus <dir> [--seed N]           export the benchmark corpus
//!   rustbrain batch [options]                   sweep the corpus on the
//!                                               parallel batch engine
//!   rustbrain kb inspect <store>                print a knowledge store's
//!                                               entry/weight/class histograms
//!                                               (and per-shard sizes for a
//!                                               sharded store)
//!   rustbrain kb migrate <src> <dst>            copy a store between layouts
//!                                               (`x.rbkb` file ⇄ `x.rbkb.d/`
//!                                               shard directory)
//!   rustbrain kb compact <store> [--threshold]  re-normalize under the
//!                                               tightened coalescing
//!                                               threshold, atomic swap-in
//!   rustbrain serve [options]                   run the resident repair
//!                                               daemon (line-delimited JSON
//!                                               over TCP, lazy KB shards,
//!                                               triggered compaction)
//!   rustbrain client <verb> [options]           send one request to a
//!                                               daemon: repair <file.mrs>,
//!                                               batch, analyze <file.mrs>,
//!                                               stats, metrics, compact,
//!                                               or shutdown
//!   rustbrain trace <verb> ...                  analyze a JSONL span trace:
//!                                               check <t> (re-validate the
//!                                               tracer's invariants),
//!                                               summarize <t>, flamegraph <t>,
//!                                               critical-path <t>,
//!                                               diff <a> <b>
//!
//! OPTIONS:
//!   --model <gpt-3.5|gpt-4|gpt-o1|claude-3.5>   backing model   [gpt-4]
//!   --temperature <0.0..1.0>                    sampling temp   [0.5]
//!   --seed <u64>                                RNG seed        [42]
//!   --no-knowledge                              disable the knowledge base
//!   --reference <out1,out2,...>                 expected outputs for the
//!                                               acceptability judgement
//!   --jobs <N>                                  batch worker threads
//!                                               [available cores]
//!   --per-class <N>                             batch cases per UB class [3]
//!   --system <rustbrain|llm-only|rust-assistant>  batch system [rustbrain]
//!   --stats-out <file>                          write batch EngineStats JSON
//!   --results-out <file>                        write deterministic per-case
//!                                               results JSON (telemetry-free)
//!   --trace-out <file>                          batch/serve: write a
//!                                               structured JSONL span trace
//!                                               (observational only)
//!   --sched <fifo|cost-ordered|stealing>        batch/serve: scheduling
//!                                               policy [stealing]
//!   --cost-table <file>                         batch: seed the scheduler
//!                                               cost model from this table
//!                                               and rewrite it afterwards
//!   --no-cache                                  judge through the direct
//!                                               oracle, bypassing the cache
//!   --cache-cap <N>                             bound the oracle cache to N
//!                                               entries, rounded up to one
//!                                               per shard (clock eviction)
//!   --kb-in <store>                             batch: start from a saved
//!                                               knowledge store (warm start;
//!                                               either layout)
//!   --kb-out <store>                            batch: save the merged
//!                                               knowledge store afterwards
//!                                               (`.rbkb.d` paths shard by
//!                                               UB class, dirty shards only)
//!   --threshold <0.0..1.0>                      kb compact: cosine threshold
//!                                               for coalescing [0.98]
//! ```
//!
//! `.mrs` files contain mini-Rust source (see `rb-lang`'s grammar); the
//! `demo` subcommand needs no file.
//!
//! Every command judges programs through the [`rb_miri::Oracle`] seam: by
//! default the process-wide verdict cache (`rb_engine::CachedOracle`),
//! with `--no-cache` the direct interpreter — the results are
//! byte-identical either way (CI diffs the two `--results-out` files).

use rb_engine::{
    results_to_json, CachedOracle, CostModel, Engine, OracleCache, SchedPolicy, SystemSpec,
};
use rb_lang::parser::parse_program;
use rb_lang::printer::print_program;
use rb_llm::ModelId;
use rb_miri::{DirectOracle, Oracle};
use rustbrain::{RustBrain, RustBrainConfig};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

/// Parsed command line.
#[derive(Debug, PartialEq)]
struct Cli {
    command: Command,
    model: ModelId,
    temperature: f64,
    seed: u64,
    use_knowledge: bool,
    reference: Vec<String>,
    jobs: usize,
    per_class: usize,
    system: BatchSystem,
    stats_out: Option<String>,
    results_out: Option<String>,
    use_cache: bool,
    cache_cap: Option<usize>,
    kb_in: Option<String>,
    kb_out: Option<String>,
    /// `Some` only when `--threshold` was passed explicitly (so passing
    /// the default value on the wrong subcommand still errors).
    threshold: Option<f64>,
    /// `Some` only when `--addr` was passed explicitly (serve/client
    /// only; both default to [`DEFAULT_ADDR`]).
    addr: Option<String>,
    /// `serve`: knowledge store to open lazily and persist back to.
    kb: Option<String>,
    /// `serve`: compact when the resident base reaches this many
    /// entries (0 = size trigger off).
    compact_entries: usize,
    /// `serve`: compact after this many seconds since the last
    /// compaction (0 = time trigger off).
    compact_secs: u64,
    /// `client batch`: restrict the sweep to these UB classes.
    classes: Option<Vec<rb_miri::UbClass>>,
    /// `batch`/`serve`: write a structured JSONL span trace here.
    trace_out: Option<String>,
    /// `batch`/`serve`: scheduling policy for batch dispatch. `Some`
    /// only when `--sched` was passed explicitly (so the flag still
    /// errors on subcommands that never dispatch a batch); the engine
    /// default is work-stealing.
    sched: Option<SchedPolicy>,
    /// `batch`: persisted cost-table path — loaded (when present) to
    /// seed the scheduler's cost model, rewritten at batch end.
    cost_table: Option<String>,
    /// `trace flamegraph`: emit collapsed-stack lines instead of the
    /// text table.
    collapsed: bool,
    /// `trace flamegraph`/`trace diff`: rows to print (0 = all).
    /// `Some` only when `--top` was passed explicitly.
    top: Option<usize>,
    /// `trace check`: required child-sim coverage of repair spans.
    /// `Some` only when `--coverage` was passed explicitly.
    coverage: Option<f64>,
    /// `trace check`: span names that must appear in the trace.
    require: Option<Vec<String>>,
    /// `trace flamegraph --collapsed`: which measure to charge.
    measure: Option<rb_obs::analyze::Measure>,
    /// `analyze`: emit JSON instead of the text report.
    json: bool,
    /// `repair`/`demo`/`batch`: the static repair preflight. `Some` only
    /// when `--preflight`/`--no-preflight` was passed explicitly; the
    /// pipeline default is on.
    preflight: Option<bool>,
}

/// Where `serve` listens and `client` connects unless `--addr` says
/// otherwise.
const DEFAULT_ADDR: &str = "127.0.0.1:4650";

/// How the oracle cache flags resolve — the single place the
/// `--no-cache`/`--cache-cap` policy is interpreted, so `check`/`repair`
/// (via [`Cli::oracle`]) and `batch` (via [`CacheMode::engine`]) can
/// never drift apart.
#[derive(Clone, Copy, Debug, PartialEq)]
enum CacheMode {
    /// `--no-cache`: every judgement runs the interpreter.
    Direct,
    /// `--cache-cap N`: a private cache bounded to ~N entries.
    Bounded(usize),
    /// Default: the process-wide shared cache.
    Global,
}

impl CacheMode {
    /// Banner label for the batch header.
    fn label(self) -> String {
        match self {
            CacheMode::Direct => "direct".to_owned(),
            CacheMode::Bounded(cap) => format!("cached (cap {cap})"),
            CacheMode::Global => "cached (process-wide)".to_owned(),
        }
    }

    /// The batch engine for this mode.
    fn engine(self, jobs: usize) -> Engine {
        match self {
            CacheMode::Direct => Engine::direct(jobs),
            CacheMode::Bounded(cap) => {
                Engine::with_cache(jobs, Arc::new(OracleCache::bounded(cap)))
            }
            CacheMode::Global => Engine::with_global_cache(jobs),
        }
    }
}

impl Cli {
    /// Resolves the cache flags to their canonical mode.
    fn cache_mode(&self) -> CacheMode {
        match (self.use_cache, self.cache_cap) {
            (false, _) => CacheMode::Direct,
            (true, Some(cap)) => CacheMode::Bounded(cap),
            (true, None) => CacheMode::Global,
        }
    }

    /// The oracle `check` and `repair` judge through.
    fn oracle(&self) -> Arc<dyn Oracle> {
        match self.cache_mode() {
            CacheMode::Direct => Arc::new(DirectOracle),
            CacheMode::Bounded(cap) => {
                Arc::new(CachedOracle::new(Arc::new(OracleCache::bounded(cap))))
            }
            CacheMode::Global => Arc::new(CachedOracle::global()),
        }
    }
}

#[derive(Debug, PartialEq)]
enum Command {
    Check(String),
    Analyze(AnalyzeTarget),
    Repair(String),
    Demo,
    Corpus(String),
    Batch,
    KbInspect(String),
    KbMigrate(String, String),
    KbCompact(String),
    Serve,
    Client(ClientVerb),
    Trace(TraceVerb),
    Help,
}

/// What `rustbrain analyze` lints.
#[derive(Debug, PartialEq)]
enum AnalyzeTarget {
    /// One `.mrs` file.
    File(String),
    /// The generated seed corpus: per-class oracle-agreement table, the
    /// zero-false-positive gate over gold programs, and the repair-rule
    /// audit (which library rules produce edits that still trip the lint
    /// they target).
    Corpus,
}

/// Which trace analysis `rustbrain trace` runs.
#[derive(Debug, PartialEq)]
enum TraceVerb {
    /// Re-validate the tracer's structural invariants (the CI gate).
    Check(String),
    /// Check report + top flamegraph paths + critical path.
    Summarize(String),
    /// Inclusive/self cost by span path and class.
    Flamegraph(String),
    /// Per-worker lanes and the speedup bound, next to the modeled one.
    CriticalPath(String),
    /// Per-path deltas between two traces (baseline, candidate).
    Diff(String, String),
}

/// Which daemon verb `rustbrain client` sends.
#[derive(Debug, PartialEq)]
enum ClientVerb {
    /// Repair a local `.mrs` file over the socket.
    Repair(String),
    /// Statically lint a local `.mrs` file over the socket.
    Analyze(String),
    Batch,
    Stats,
    Metrics,
    Compact,
    Shutdown,
}

/// Which system a `batch` sweep drives.
#[derive(Clone, Copy, Debug, PartialEq)]
enum BatchSystem {
    Brain,
    LlmOnly,
    RustAssistant,
}

fn parse_system(s: &str) -> Result<BatchSystem, String> {
    match s.to_ascii_lowercase().as_str() {
        "rustbrain" | "brain" => Ok(BatchSystem::Brain),
        "llm-only" | "llm" => Ok(BatchSystem::LlmOnly),
        "rust-assistant" | "assistant" => Ok(BatchSystem::RustAssistant),
        other => Err(format!("unknown system `{other}`")),
    }
}

fn parse_model(s: &str) -> Result<ModelId, String> {
    match s.to_ascii_lowercase().as_str() {
        "gpt-3.5" | "gpt35" => Ok(ModelId::Gpt35),
        "gpt-4" | "gpt4" => Ok(ModelId::Gpt4),
        "gpt-o1" | "o1" => Ok(ModelId::GptO1),
        "claude-3.5" | "claude" => Ok(ModelId::Claude35),
        other => Err(format!("unknown model `{other}`")),
    }
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        command: Command::Help,
        model: ModelId::Gpt4,
        temperature: 0.5,
        seed: 42,
        use_knowledge: true,
        reference: Vec::new(),
        jobs: std::thread::available_parallelism().map_or(1, usize::from),
        per_class: 3,
        system: BatchSystem::Brain,
        stats_out: None,
        results_out: None,
        use_cache: true,
        cache_cap: None,
        kb_in: None,
        kb_out: None,
        threshold: None,
        addr: None,
        kb: None,
        compact_entries: 0,
        compact_secs: 0,
        classes: None,
        trace_out: None,
        sched: None,
        cost_table: None,
        collapsed: false,
        top: None,
        coverage: None,
        require: None,
        measure: None,
        json: false,
        preflight: None,
    };
    let mut it = args.iter().peekable();
    match it.next().map(String::as_str) {
        Some("check") => {
            let file = it.next().ok_or("`check` needs a file argument")?;
            cli.command = Command::Check(file.clone());
        }
        Some("analyze") => {
            let target = match it.peek().map(|s| s.as_str()) {
                Some("--corpus") => {
                    it.next();
                    AnalyzeTarget::Corpus
                }
                Some(s) if !s.starts_with("--") => {
                    let file = it.next().expect("peeked");
                    AnalyzeTarget::File(file.clone())
                }
                _ => return Err("`analyze` needs a file argument or --corpus".into()),
            };
            cli.command = Command::Analyze(target);
        }
        Some("repair") => {
            let file = it.next().ok_or("`repair` needs a file argument")?;
            cli.command = Command::Repair(file.clone());
        }
        Some("demo") => cli.command = Command::Demo,
        Some("batch") => cli.command = Command::Batch,
        Some("kb") => match it.next().map(String::as_str) {
            Some("inspect") => {
                let file = it.next().ok_or("`kb inspect` needs a store argument")?;
                cli.command = Command::KbInspect(file.clone());
            }
            Some("migrate") => {
                let src = it.next().ok_or("`kb migrate` needs <src> and <dst>")?;
                let dst = it.next().ok_or("`kb migrate` needs <src> and <dst>")?;
                cli.command = Command::KbMigrate(src.clone(), dst.clone());
            }
            Some("compact") => {
                let file = it.next().ok_or("`kb compact` needs a store argument")?;
                cli.command = Command::KbCompact(file.clone());
            }
            Some(other) => return Err(format!("unknown kb subcommand `{other}`")),
            None => return Err("`kb` needs a subcommand (try `kb inspect <store>`)".into()),
        },
        Some("corpus") => {
            let dir = it.next().ok_or("`corpus` needs a directory argument")?;
            cli.command = Command::Corpus(dir.clone());
        }
        Some("serve") => cli.command = Command::Serve,
        Some("trace") => {
            let verb = match it.next().map(String::as_str) {
                Some("check") => {
                    let t = it.next().ok_or("`trace check` needs a trace file")?;
                    TraceVerb::Check(t.clone())
                }
                Some("summarize") => {
                    let t = it.next().ok_or("`trace summarize` needs a trace file")?;
                    TraceVerb::Summarize(t.clone())
                }
                Some("flamegraph") => {
                    let t = it.next().ok_or("`trace flamegraph` needs a trace file")?;
                    TraceVerb::Flamegraph(t.clone())
                }
                Some("critical-path") => {
                    let t = it
                        .next()
                        .ok_or("`trace critical-path` needs a trace file")?;
                    TraceVerb::CriticalPath(t.clone())
                }
                Some("diff") => {
                    let a = it
                        .next()
                        .ok_or("`trace diff` needs <baseline> and <candidate>")?;
                    let b = it
                        .next()
                        .ok_or("`trace diff` needs <baseline> and <candidate>")?;
                    TraceVerb::Diff(a.clone(), b.clone())
                }
                Some(other) => return Err(format!("unknown trace verb `{other}`")),
                None => {
                    return Err(
                        "`trace` needs a verb (check|summarize|flamegraph|critical-path|diff)"
                            .into(),
                    )
                }
            };
            cli.command = Command::Trace(verb);
        }
        Some("client") => {
            let verb = match it.next().map(String::as_str) {
                Some("repair") => {
                    let file = it.next().ok_or("`client repair` needs a file argument")?;
                    ClientVerb::Repair(file.clone())
                }
                Some("analyze") => {
                    let file = it.next().ok_or("`client analyze` needs a file argument")?;
                    ClientVerb::Analyze(file.clone())
                }
                Some("batch") => ClientVerb::Batch,
                Some("stats") => ClientVerb::Stats,
                Some("metrics") => ClientVerb::Metrics,
                Some("compact") => ClientVerb::Compact,
                Some("shutdown") => ClientVerb::Shutdown,
                Some(other) => return Err(format!("unknown client verb `{other}`")),
                None => return Err(
                    "`client` needs a verb (repair|batch|analyze|stats|metrics|compact|shutdown)"
                        .into(),
                ),
            };
            cli.command = Command::Client(verb);
        }
        Some("help" | "--help" | "-h") | None => cli.command = Command::Help,
        Some(other) => return Err(format!("unknown command `{other}`")),
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--model" => {
                let v = it.next().ok_or("--model needs a value")?;
                cli.model = parse_model(v)?;
            }
            "--temperature" => {
                let v = it.next().ok_or("--temperature needs a value")?;
                cli.temperature = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad temperature `{v}`"))?;
                if !(0.0..=1.0).contains(&cli.temperature) {
                    return Err("temperature must be in [0, 1]".into());
                }
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                cli.seed = v.parse::<u64>().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--no-knowledge" => cli.use_knowledge = false,
            "--reference" => {
                let v = it.next().ok_or("--reference needs a value")?;
                cli.reference = v.split(',').map(str::to_owned).collect();
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                cli.jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad --jobs `{v}`"))?;
                if cli.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--per-class" => {
                let v = it.next().ok_or("--per-class needs a value")?;
                cli.per_class = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad --per-class `{v}`"))?;
                if cli.per_class == 0 {
                    return Err("--per-class must be at least 1".into());
                }
            }
            "--system" => {
                let v = it.next().ok_or("--system needs a value")?;
                cli.system = parse_system(v)?;
            }
            "--stats-out" => {
                let v = it.next().ok_or("--stats-out needs a value")?;
                cli.stats_out = Some(v.clone());
            }
            "--results-out" => {
                let v = it.next().ok_or("--results-out needs a value")?;
                cli.results_out = Some(v.clone());
            }
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a value")?;
                cli.trace_out = Some(v.clone());
            }
            "--sched" => {
                let v = it.next().ok_or("--sched needs a value")?;
                cli.sched = Some(SchedPolicy::parse(v).ok_or_else(|| {
                    format!("unknown --sched policy `{v}` (fifo|cost-ordered|stealing)")
                })?);
            }
            "--cost-table" => {
                let v = it.next().ok_or("--cost-table needs a value")?;
                cli.cost_table = Some(v.clone());
            }
            "--collapsed" => cli.collapsed = true,
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                cli.top = Some(v.parse::<usize>().map_err(|_| format!("bad --top `{v}`"))?);
            }
            "--coverage" => {
                let v = it.next().ok_or("--coverage needs a value")?;
                let c = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad --coverage `{v}`"))?;
                if !(0.0..=1.0).contains(&c) {
                    return Err("--coverage must be in [0, 1]".into());
                }
                cli.coverage = Some(c);
            }
            "--require" => {
                let v = it.next().ok_or("--require needs a value")?;
                let names: Vec<String> = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
                if names.is_empty() {
                    return Err("--require must name at least one span kind".into());
                }
                cli.require = Some(names);
            }
            "--measure" => {
                let v = it.next().ok_or("--measure needs a value")?;
                cli.measure = Some(
                    rb_obs::analyze::Measure::parse(v)
                        .ok_or_else(|| format!("unknown --measure `{v}` (sim|wall)"))?,
                );
            }
            "--json" => cli.json = true,
            "--preflight" => cli.preflight = Some(true),
            "--no-preflight" => cli.preflight = Some(false),
            "--no-cache" => cli.use_cache = false,
            "--cache-cap" => {
                let v = it.next().ok_or("--cache-cap needs a value")?;
                let cap = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad --cache-cap `{v}`"))?;
                if cap == 0 {
                    return Err("--cache-cap must be at least 1".into());
                }
                cli.cache_cap = Some(cap);
            }
            "--kb-in" => {
                let v = it.next().ok_or("--kb-in needs a value")?;
                cli.kb_in = Some(v.clone());
            }
            "--kb-out" => {
                let v = it.next().ok_or("--kb-out needs a value")?;
                cli.kb_out = Some(v.clone());
            }
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                let t = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad --threshold `{v}`"))?;
                if !(0.0..=1.0).contains(&t) {
                    return Err("--threshold must be in [0, 1]".into());
                }
                cli.threshold = Some(t);
            }
            "--addr" => {
                let v = it.next().ok_or("--addr needs a value")?;
                cli.addr = Some(v.clone());
            }
            "--kb" => {
                let v = it.next().ok_or("--kb needs a value")?;
                cli.kb = Some(v.clone());
            }
            "--compact-entries" => {
                let v = it.next().ok_or("--compact-entries needs a value")?;
                cli.compact_entries = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad --compact-entries `{v}`"))?;
            }
            "--compact-secs" => {
                let v = it.next().ok_or("--compact-secs needs a value")?;
                cli.compact_secs = v
                    .parse::<u64>()
                    .map_err(|_| format!("bad --compact-secs `{v}`"))?;
            }
            "--classes" => {
                let v = it.next().ok_or("--classes needs a value")?;
                let mut classes = Vec::new();
                for label in v.split(',') {
                    let class = rb_serve::protocol::class_from_label(label)
                        .ok_or_else(|| format!("unknown UB class `{label}`"))?;
                    if !classes.contains(&class) {
                        classes.push(class);
                    }
                }
                if classes.is_empty() {
                    return Err("--classes must name at least one class".into());
                }
                cli.classes = Some(classes);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !cli.use_cache && cli.cache_cap.is_some() {
        return Err("--cache-cap conflicts with --no-cache".into());
    }
    if cli.json && !matches!(cli.command, Command::Analyze(_)) {
        return Err("--json only applies to `analyze`".into());
    }
    if cli.preflight.is_some()
        && !matches!(
            cli.command,
            Command::Repair(_) | Command::Demo | Command::Batch
        )
    {
        return Err("--preflight/--no-preflight only apply to `repair`, `demo` and `batch`".into());
    }
    if (cli.kb_in.is_some() || cli.kb_out.is_some()) && cli.command != Command::Batch {
        return Err("--kb-in/--kb-out only apply to `batch`".into());
    }
    if cli.threshold.is_some() && !matches!(cli.command, Command::KbCompact(_)) {
        return Err("--threshold only applies to `kb compact`".into());
    }
    if cli.addr.is_some() && !matches!(cli.command, Command::Serve | Command::Client(_)) {
        return Err("--addr only applies to `serve` and `client`".into());
    }
    if (cli.kb.is_some() || cli.compact_entries > 0 || cli.compact_secs > 0)
        && cli.command != Command::Serve
    {
        return Err("--kb/--compact-entries/--compact-secs only apply to `serve`".into());
    }
    if cli.classes.is_some() && !matches!(cli.command, Command::Client(ClientVerb::Batch)) {
        return Err("--classes only applies to `client batch`".into());
    }
    if cli.trace_out.is_some() && !matches!(cli.command, Command::Batch | Command::Serve) {
        return Err("--trace-out only applies to `batch` and `serve`".into());
    }
    if cli.sched.is_some() && !matches!(cli.command, Command::Batch | Command::Serve) {
        return Err("--sched only applies to `batch` and `serve`".into());
    }
    if cli.cost_table.is_some() && cli.command != Command::Batch {
        return Err("--cost-table only applies to `batch`".into());
    }
    if (cli.coverage.is_some() || cli.require.is_some())
        && !matches!(cli.command, Command::Trace(TraceVerb::Check(_)))
    {
        return Err("--coverage/--require only apply to `trace check`".into());
    }
    if (cli.collapsed || cli.measure.is_some())
        && !matches!(cli.command, Command::Trace(TraceVerb::Flamegraph(_)))
    {
        return Err("--collapsed/--measure only apply to `trace flamegraph`".into());
    }
    if cli.top.is_some()
        && !matches!(
            cli.command,
            Command::Trace(TraceVerb::Flamegraph(_) | TraceVerb::Diff(_, _))
        )
    {
        return Err("--top only applies to `trace flamegraph` and `trace diff`".into());
    }
    Ok(cli)
}

const DEMO: &str = "fn main() {
    let q: *const i32 = 0 as *const i32;
    { let x: i32 = 5; q = &raw const x; }
    unsafe { print(*q); }
}";

fn usage() -> &'static str {
    "rustbrain — LLM-driven undefined-behaviour repair (DAC'25 reproduction)

USAGE:
  rustbrain check  <file.mrs>               run the UB oracle only
  rustbrain analyze <file.mrs|--corpus>     static UB lint (rb_lint): findings
                                            with class, rule and confidence,
                                            no oracle run; --corpus sweeps the
                                            seed corpus (per-class agreement
                                            table, the zero-false-positive
                                            gate over gold programs, and the
                                            repair-rule audit)
  rustbrain repair <file.mrs> [options]     detect and repair
  rustbrain demo                            repair a built-in example
  rustbrain corpus <dir> [--seed N]         export the benchmark corpus
  rustbrain batch [options]                 sweep the corpus on the
                                            parallel batch engine
  rustbrain kb inspect <store>              print a knowledge store's
                                            entry/weight/class histograms
                                            (plus per-shard sizes when sharded)
  rustbrain kb migrate <src> <dst>          copy a store between layouts
                                            (x.rbkb file <-> x.rbkb.d/ shards)
  rustbrain kb compact <store> [--threshold T]
                                            re-normalize shards under a
                                            tightened coalescing threshold
  rustbrain serve [options]                 run the resident repair daemon
                                            (line-delimited JSON over TCP;
                                            lazy knowledge shards)
  rustbrain client <verb> [options]         send one request to a daemon:
                                            repair <file.mrs> | batch |
                                            analyze <file.mrs> | stats |
                                            metrics | compact | shutdown
  rustbrain trace check <t.jsonl>           re-validate a span trace's
                                            invariants (nesting, unique ids,
                                            >=95% repair-overhead coverage)
  rustbrain trace summarize <t.jsonl>       check report + top paths +
                                            critical path, one shot
  rustbrain trace flamegraph <t.jsonl>      inclusive/self sim-ms and wall-us
                                            by span path and by class
  rustbrain trace critical-path <t.jsonl>   per-worker engine.job lanes and
                                            the max-speedup bound, next to
                                            the modeled stealing speedup
  rustbrain trace diff <a.jsonl> <b.jsonl>  per-path cost deltas, sorted by
                                            regression magnitude

OPTIONS:
  --model <gpt-3.5|gpt-4|gpt-o1|claude-3.5>  backing model   [gpt-4]
  --temperature <0.0..1.0>                   sampling temp   [0.5]
  --seed <u64>                               RNG seed        [42]
  --no-knowledge                             disable the knowledge base
  --reference <out1,out2,...>                expected outputs
  --jobs <N>                                 batch worker threads [cores]
  --per-class <N>                            batch cases per UB class [3]
  --system <rustbrain|llm-only|rust-assistant>  batch system [rustbrain]
  --stats-out <file>                         write batch EngineStats JSON
  --results-out <file>                       write deterministic per-case
                                             results JSON (telemetry-free)
  --trace-out <file>                         batch/serve: write a structured
                                             JSONL span trace (one JSON object
                                             per span; observational only —
                                             results are byte-identical with
                                             or without it)
  --sched <fifo|cost-ordered|stealing>       batch/serve: how batch jobs
                                             reach the workers [stealing];
                                             results are byte-identical
                                             under every policy
  --cost-table <file>                        batch: load the scheduler's
                                             per-class cost table from this
                                             file when it exists, and write
                                             the blended observations back
                                             at batch end
  --json                                     analyze: emit the report as one
                                             JSON document instead of text
  --preflight / --no-preflight               repair/demo/batch: toggle the
                                             static repair preflight (veto
                                             provably regressive candidates
                                             before the oracle) [on]; repair
                                             trajectories are byte-identical
                                             either way
  --no-cache                                 bypass the oracle verdict cache
  --cache-cap <N>                            bound the cache to N entries
                                             (rounded up; minimum 16)
  --kb-in <store>                            batch: warm-start from a saved
                                             knowledge store (either layout)
  --kb-out <store>                           batch: save the merged knowledge
                                             store afterwards (atomic write;
                                             a .rbkb.d path shards by UB class
                                             and rewrites dirty shards only)
  --threshold <0.0..1.0>                     kb compact: coalescing cosine
                                             threshold [0.98]
  --addr <host:port>                         serve/client: listen/connect
                                             address [127.0.0.1:4650]
  --kb <store>                               serve: knowledge store, opened
                                             lazily (shards fault in per
                                             class) and saved on shutdown
  --compact-entries <N>                      serve: compact when the resident
                                             base reaches N entries [off]
  --compact-secs <N>                         serve: compact every N seconds
                                             of wall clock [off]
  --classes <c1,c2,...>                      client batch: restrict the sweep
                                             to these UB classes [all]
  --coverage <0.0..1.0>                      trace check: required repair
                                             child-sim coverage [0.95]
  --require <name1,name2,...>                trace check: span kinds that must
                                             appear (CI uses
                                             engine.job,repair,fast)
  --collapsed                                trace flamegraph: emit
                                             collapsed-stack lines (for
                                             flamegraph tooling) instead of
                                             the text table
  --measure <sim|wall>                       trace flamegraph --collapsed:
                                             charge simulated or wall
                                             microseconds [sim]
  --top <N>                                  trace flamegraph/diff: rows to
                                             print (0 = all) [40]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    match cli.command {
        Command::Help => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        Command::Check(ref file) => match std::fs::read_to_string(file) {
            Ok(src) => check(&src, &cli),
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                ExitCode::from(2)
            }
        },
        Command::Analyze(AnalyzeTarget::File(ref file)) => match std::fs::read_to_string(file) {
            Ok(src) => analyze_file(file, &src, &cli),
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                ExitCode::from(2)
            }
        },
        Command::Analyze(AnalyzeTarget::Corpus) => analyze_corpus(&cli),
        Command::Repair(ref file) => match std::fs::read_to_string(file) {
            Ok(src) => repair(&src, &cli),
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                ExitCode::from(2)
            }
        },
        Command::Corpus(ref dir) => export_corpus(dir, cli.seed),
        Command::Batch => batch(&cli),
        Command::KbInspect(ref file) => kb_inspect(file),
        Command::KbMigrate(ref src, ref dst) => kb_migrate(src, dst),
        Command::KbCompact(ref file) => kb_compact(
            file,
            cli.threshold
                .unwrap_or(rb_kb::COMPACTION_COALESCE_THRESHOLD),
            cli.jobs,
        ),
        Command::Serve => serve(&cli),
        Command::Trace(ref verb) => trace_cmd(&cli, verb),
        Command::Client(ref verb) => match verb {
            ClientVerb::Repair(file) => client_call(&cli, |cli| {
                let src = std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read {file}: {e}"))?;
                Ok(rb_serve::client::repair_request(
                    &src,
                    &cli.reference,
                    cli.seed,
                ))
            }),
            ClientVerb::Analyze(file) => client_call(&cli, |_| {
                let src = std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read {file}: {e}"))?;
                Ok(rb_serve::client::analyze_request(&src))
            }),
            ClientVerb::Batch => client_call(&cli, |cli| {
                Ok(rb_serve::client::batch_request(
                    cli.seed,
                    cli.per_class,
                    cli.classes.as_deref(),
                ))
            }),
            ClientVerb::Stats => client_call(&cli, |_| Ok(rb_serve::client::stats_request())),
            ClientVerb::Metrics => client_call(&cli, |_| Ok(rb_serve::client::metrics_request())),
            ClientVerb::Compact => client_call(&cli, |_| Ok(rb_serve::client::compact_request())),
            ClientVerb::Shutdown => client_call(&cli, |_| Ok(rb_serve::client::shutdown_request())),
        },
        Command::Demo => {
            println!("repairing the built-in dangling-pointer demo:\n\n{DEMO}\n");
            let mut demo_cli = cli;
            demo_cli.reference = vec!["5".to_owned()];
            repair(DEMO, &demo_cli)
        }
    }
}

fn export_corpus(dir: &str, seed: u64) -> ExitCode {
    let corpus = rb_dataset::Corpus::generate_full(seed, 2);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {dir}: {e}");
        return ExitCode::from(2);
    }
    let mut written = 0usize;
    for case in &corpus.cases {
        let stem = case.id.replace(['/', '.'], "_");
        let buggy_path = format!("{dir}/{stem}.buggy.mrs");
        let gold_path = format!("{dir}/{stem}.gold.mrs");
        let ok = std::fs::write(&buggy_path, print_program(&case.buggy)).is_ok()
            && std::fs::write(&gold_path, print_program(&case.gold)).is_ok();
        if ok {
            written += 2;
        } else {
            eprintln!("error: failed writing {stem}");
            return ExitCode::from(2);
        }
    }
    println!(
        "wrote {written} files ({} cases across {} classes) to {dir}",
        corpus.len(),
        corpus.stats().len()
    );
    ExitCode::SUCCESS
}

/// Loads and parses a trace file, printing the typed error on failure.
fn load_trace(path: &str) -> Result<Vec<rb_obs::TraceSpan>, ExitCode> {
    rb_obs::analyze::read_file(Path::new(path)).map_err(|e| {
        eprintln!("error: {e}");
        ExitCode::from(2)
    })
}

/// Builds the span tree, printing the typed error on failure.
fn load_tree(path: &str) -> Result<rb_obs::SpanTree, ExitCode> {
    rb_obs::SpanTree::build(load_trace(path)?).map_err(|e| {
        eprintln!("error: {e}");
        ExitCode::FAILURE
    })
}

fn trace_cmd(cli: &Cli, verb: &TraceVerb) -> ExitCode {
    use rb_obs::analyze;
    match verb {
        TraceVerb::Check(path) => {
            let spans = match load_trace(path) {
                Ok(s) => s,
                Err(code) => return code,
            };
            let opts = analyze::CheckOptions {
                coverage: cli.coverage.unwrap_or(analyze::DEFAULT_COVERAGE),
                require_names: cli.require.clone().unwrap_or_default(),
                ..analyze::CheckOptions::default()
            };
            let report = analyze::check(&spans, &opts);
            print!("{}", report.render());
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        TraceVerb::Summarize(path) => {
            let spans = match load_trace(path) {
                Ok(s) => s,
                Err(code) => return code,
            };
            match rb_obs::SpanTree::build(spans.clone()) {
                Ok(tree) => {
                    print!("{}", analyze::render_summary(&spans, &tree));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        TraceVerb::Flamegraph(path) => {
            let tree = match load_tree(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let aggs = analyze::flamegraph(&tree);
            if cli.collapsed {
                let measure = cli.measure.unwrap_or(analyze::Measure::Sim);
                print!("{}", analyze::render_collapsed(&aggs, measure));
            } else {
                let classes = analyze::class_breakdown(&tree);
                print!(
                    "{}",
                    analyze::render_flamegraph(&aggs, &classes, cli.top.unwrap_or(40))
                );
            }
            ExitCode::SUCCESS
        }
        TraceVerb::CriticalPath(path) => {
            let tree = match load_tree(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let cp = analyze::critical_path(&tree);
            if cp.lanes.is_empty() {
                eprintln!("error: no engine.job spans in {path} — not a batch trace");
                return ExitCode::FAILURE;
            }
            print!("{}", cp.render());
            // The modeled counterpart: replay the same simulated
            // durations through PR 8's virtual clock on the same worker
            // count. The trace bound and the model should agree within
            // tolerance — divergence means placement went wrong.
            let sims: Vec<f64> = tree
                .spans()
                .iter()
                .filter(|s| s.name == "engine.job")
                .map(|s| s.sim_ms)
                .collect();
            let workers = cp.lanes.len();
            let modeled = rb_engine::model_schedule(SchedPolicy::Stealing, &sims, &sims, workers);
            let bound = cp.speedup_bound_sim();
            let modeled_speedup = modeled.speedup();
            let divergence = if modeled_speedup > 0.0 {
                (bound - modeled_speedup).abs() / modeled_speedup
            } else {
                0.0
            };
            if divergence <= 0.10 {
                println!(
                    "  modeled stealing speedup ({workers} workers): {modeled_speedup:.2}x — trace bound agrees within 10%"
                );
            } else {
                println!(
                    "  modeled stealing speedup ({workers} workers): {modeled_speedup:.2}x — trace bound DIVERGES beyond 10%"
                );
                println!(
                    "    bound {bound:.2}x vs modeled {modeled_speedup:.2}x ({:.0}% apart)",
                    divergence * 100.0
                );
            }
            ExitCode::SUCCESS
        }
        TraceVerb::Diff(a, b) => {
            let (tree_a, tree_b) = match (load_tree(a), load_tree(b)) {
                (Ok(ta), Ok(tb)) => (ta, tb),
                (Err(code), _) | (_, Err(code)) => return code,
            };
            let rows = analyze::diff(&analyze::flamegraph(&tree_a), &analyze::flamegraph(&tree_b));
            print!("{}", analyze::render_diff(&rows, cli.top.unwrap_or(40)));
            ExitCode::SUCCESS
        }
    }
}

fn batch(cli: &Cli) -> ExitCode {
    let corpus = rb_dataset::Corpus::generate_full(cli.seed, cli.per_class);
    let spec = match cli.system {
        BatchSystem::Brain => {
            let mut config = RustBrainConfig::for_model(cli.model, cli.seed);
            config.temperature = cli.temperature;
            config.use_knowledge = cli.use_knowledge;
            config.preflight = cli.preflight.unwrap_or(true);
            SystemSpec::brain(config)
        }
        BatchSystem::LlmOnly => SystemSpec::Llm {
            model: cli.model,
            temperature: cli.temperature,
        },
        BatchSystem::RustAssistant => SystemSpec::RustAssistant {
            model: cli.model,
            temperature: cli.temperature,
        },
    };
    // The cache mode decides both the engine and its banner label, so the
    // printed oracle mode can never drift from what actually runs. The
    // engine injects its oracle into every system it builds — the whole
    // repair stack, not just gold references, shares one cache.
    let mode = cli.cache_mode();
    // The scheduler: the engine's default (work-stealing) unless --sched
    // says otherwise, with the cost model seeded from --cost-table when
    // the file exists (first runs start from the static defaults and
    // write the table below). Dispatch order never changes results.
    let policy = cli.sched.unwrap_or_default();
    let table_path = cli.cost_table.as_ref().map(std::path::PathBuf::from);
    let mut cost_model = match &table_path {
        Some(path) if path.exists() => match CostModel::load(path) {
            Ok(model) => model,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        _ => CostModel::defaults(),
    };
    let mut engine = mode
        .engine(cli.jobs)
        .with_policy(policy)
        .with_cost_model(cost_model.clone());
    // Tracing observes only: the results documents below are
    // byte-identical whether or not a tracer is attached.
    let tracer = match &cli.trace_out {
        Some(path) => match rb_obs::Tracer::to_file(Path::new(path)) {
            Ok(tracer) => {
                engine = engine.with_tracer(tracer.clone());
                Some(tracer)
            }
            Err(e) => {
                eprintln!("error: cannot open trace file {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    println!(
        "batch: {} cases ({} classes, {} per class) | system {} | {} worker(s) | sched {} | oracle {} | kb {}",
        corpus.len(),
        corpus.stats().len(),
        cli.per_class,
        spec.label(),
        cli.jobs,
        policy.label(),
        mode.label(),
        match &cli.kb_in {
            Some(path) => format!("warm ({path})"),
            None => "cold".to_owned(),
        },
    );
    let outcome = match engine.run_batch_stored(
        &spec,
        &corpus.cases,
        cli.seed,
        cli.kb_in.as_deref().map(Path::new),
        cli.kb_out.as_deref().map(Path::new),
    ) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let (pass, exec) = rb_bench::overall_rates(&outcome.results);
    println!(
        "pass rate: {:.1}% | exec rate: {:.1}% | wall: {:.0} ms | {:.1} cases/s | cache hit rate: {:.1}%",
        pass.percent(),
        exec.percent(),
        outcome.stats.wall_ms,
        outcome.stats.cases_per_sec,
        outcome.stats.cache.hit_rate() * 100.0,
    );
    println!(
        "oracle judgements: {} executed / {} cached / {} prevetoed | knowledge: {} seeded + {} learned - {} coalesced = {} entries | kb query time: {:.0} ms",
        outcome.stats.oracle_executed,
        outcome.stats.oracle_cached,
        outcome.stats.oracle_prevetoed,
        outcome.stats.kb.seeded_entries,
        outcome.stats.kb.merged_inserts,
        outcome.stats.kb.coalesced,
        outcome.stats.kb.final_entries,
        outcome.stats.kb_query_ms,
    );
    println!(
        "scheduler: {} | steals: {} | max queue depth: {}",
        outcome.stats.sched.policy, outcome.stats.sched.steals, outcome.stats.sched.max_queue_depth,
    );
    if let Some(path) = &cli.kb_out {
        println!(
            "knowledge store written to {path} ({} segment(s) rewritten, {} already clean)",
            outcome.stats.kb.shards_written, outcome.stats.kb.shards_skipped,
        );
    }
    // Persist what this batch learned about per-class cost: blend the
    // observed per-class mean wall times into the table so the next
    // run's LPT seeding starts from measured reality.
    if let Some(path) = &table_path {
        let mut sums: std::collections::BTreeMap<rb_miri::UbClass, (f64, usize)> =
            std::collections::BTreeMap::new();
        for j in &outcome.jobs {
            let entry = sums.entry(j.result.class).or_insert((0.0, 0));
            entry.0 += j.wall_ms;
            entry.1 += 1;
        }
        for (class, (sum, n)) in sums {
            cost_model.observe(class, sum / n as f64);
        }
        if let Err(e) = cost_model.save(path) {
            eprintln!("error: cannot write cost table {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("cost table written to {}", path.display());
    }
    if let Some(path) = &cli.results_out {
        if let Err(e) = std::fs::write(path, format!("{}\n", results_to_json(&outcome.results))) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("deterministic results written to {path}");
    }
    if let (Some(tracer), Some(path)) = (&tracer, &cli.trace_out) {
        tracer.flush();
        println!("span trace written to {path}");
    }
    let stats_json = outcome.stats.to_json();
    match &cli.stats_out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{stats_json}\n")) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            println!("engine stats written to {path}");
        }
        None => println!("{stats_json}"),
    }
    ExitCode::SUCCESS
}

fn kb_inspect(file: &str) -> ExitCode {
    let path = Path::new(file);
    // One open per store: the sharded arm loads entries and prints its
    // segment table from the same handle, so the table can never show a
    // different store generation than the histograms below it.
    let (layout, entries, shards) = match rb_kb::detect_layout(path) {
        rb_kb::StoreLayout::SingleFile => match rb_kb::load(path) {
            Ok(entries) => ("single-file", entries, Vec::new()),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        rb_kb::StoreLayout::Sharded => {
            let loaded = rb_kb::ShardedStore::open(path).and_then(|mut store| {
                let entries = store.load_all()?;
                Ok((entries, store.manifest().shards.clone()))
            });
            match loaded {
                Ok((entries, shards)) => ("sharded", entries, shards),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let total_weight: u64 = entries.iter().map(|e| u64::from(e.weight)).sum();
    println!(
        "{file}: rbkb v{} ({layout}) | {} entries standing for {} solved cases",
        rb_kb::FORMAT_VERSION,
        entries.len(),
        total_weight,
    );
    // A sharded store additionally reports its on-disk segmentation —
    // which classes occupy which segment files, and how big each is.
    if !shards.is_empty() {
        println!("\nshard            entries   weight    bytes  file");
        for m in &shards {
            println!(
                "{:<16} {:>7} {:>8} {:>8}  {}",
                m.class.label(),
                m.entries,
                m.weight,
                m.bytes,
                m.file_name(),
            );
        }
    }
    if entries.is_empty() {
        return ExitCode::SUCCESS;
    }

    // Per-class histogram: entry slots and the solved-case weight behind
    // them (the difference is what the merge policy has folded away).
    let index = rb_kb::KbIndex::build(&entries);
    println!("\nclass            entries   weight");
    for (class, count) in index.histogram() {
        let weight: u64 = index
            .bucket(class)
            .iter()
            .map(|&i| u64::from(entries[i as usize].weight))
            .sum();
        println!("{:<16} {:>7} {:>8}", class.label(), count, weight);
    }

    // Per-rule weights, heaviest first (what the base has actually
    // learned to reach for).
    let mut rules: Vec<(rb_llm::RepairRule, u64)> = Vec::new();
    for e in &entries {
        match rules.iter_mut().find(|(r, _)| *r == e.rule) {
            Some((_, w)) => *w += u64::from(e.weight),
            None => rules.push((e.rule, u64::from(e.weight))),
        }
    }
    rules.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then_with(|| rb_kb::codec::rule_code(a.0).cmp(&rb_kb::codec::rule_code(b.0)))
    });
    println!("\nrule                           weight");
    for (rule, weight) in rules {
        println!("{:<30} {:>7}", format!("{rule:?}"), weight);
    }
    ExitCode::SUCCESS
}

/// Copies a knowledge store between layouts: the destination layout is
/// whatever `dst` implies (`x.rbkb.d` → sharded, anything else → single
/// file), so this is both the migration *to* shards and the way back.
fn kb_migrate(src: &str, dst: &str) -> ExitCode {
    let entries = match rb_kb::load_any(Path::new(src)) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match rb_kb::save_any(Path::new(dst), &entries) {
        Ok(report) => {
            println!(
                "migrated {src} -> {dst}: {} entries in {} segment(s)",
                entries.len(),
                report.shards_written + report.shards_skipped,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Re-normalizes a store under the (tightened) compaction policy. For a
/// sharded store each segment compacts independently on background
/// threads and swaps in atomically; a single-file store is rewritten
/// whole. Compaction only folds near-duplicate weight together — total
/// solved-case weight is preserved, entry count can only shrink.
fn kb_compact(file: &str, threshold: f64, jobs: usize) -> ExitCode {
    let path = Path::new(file);
    let policy = rustbrain::MergePolicy::compaction(threshold);
    let report = match rb_kb::detect_layout(path) {
        rb_kb::StoreLayout::Sharded => match rb_kb::ShardedStore::open(path) {
            Ok(mut store) => store.compact(&policy, jobs),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        rb_kb::StoreLayout::SingleFile => rb_kb::load(path).and_then(|entries| {
            let before = entries.len() as u64;
            let weight: u64 = entries.iter().map(|e| u64::from(e.weight)).sum();
            let compacted = policy.normalize(entries);
            rb_kb::save(path, &compacted)?;
            Ok(rb_kb::CompactReport {
                shards_compacted: 1,
                entries_before: before,
                entries_after: compacted.len() as u64,
                weight_before: weight,
                weight_after: compacted.iter().map(|e| u64::from(e.weight)).sum(),
            })
        }),
    };
    match report {
        Ok(r) => {
            println!(
                "compacted {file} @ cosine {threshold}: {} -> {} entries ({} folded) | weight {} -> {} | {} segment(s) rewritten",
                r.entries_before,
                r.entries_after,
                r.entries_before - r.entries_after,
                r.weight_before,
                r.weight_after,
                r.shards_compacted,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// `rustbrain serve`: run the resident repair daemon until a `shutdown`
/// request arrives, then dump (or write) the final [`rb_serve::ServeStats`].
fn serve(cli: &Cli) -> ExitCode {
    let config = rb_serve::ServeConfig {
        addr: cli.addr.clone().unwrap_or_else(|| DEFAULT_ADDR.to_owned()),
        jobs: cli.jobs,
        handlers: 2,
        kb_path: cli.kb.as_deref().map(std::path::PathBuf::from),
        compact_entries: cli.compact_entries,
        compact_secs: cli.compact_secs,
        trace_out: cli.trace_out.as_deref().map(std::path::PathBuf::from),
        sched: cli.sched.unwrap_or_default(),
    };
    let sched_label = config.sched.label();
    let kb_label = cli.kb.clone().unwrap_or_else(|| "in-memory".to_owned());
    let server = match rb_serve::Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // The smoke harness waits for this exact line before connecting, so
    // it goes out flushed and before any request is served.
    println!(
        "serving on {} | {} worker(s) | sched {sched_label} | kb {kb_label}",
        server.local_addr(),
        cli.jobs,
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let stats = server.run();
    let stats_json = stats.to_json();
    match &cli.stats_out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{stats_json}\n")) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            println!("serve stats written to {path}");
        }
        None => println!("{stats_json}"),
    }
    ExitCode::SUCCESS
}

/// `rustbrain client <verb>`: one request line to a running daemon, the
/// response line to stdout. A `batch` response's embedded results
/// document additionally lands in `--results-out` verbatim — the same
/// bytes `rustbrain batch --results-out` writes, which is what CI diffs.
fn client_call(cli: &Cli, build: impl FnOnce(&Cli) -> Result<String, String>) -> ExitCode {
    let addr = cli.addr.clone().unwrap_or_else(|| DEFAULT_ADDR.to_owned());
    let request = match build(cli) {
        Ok(request) => request,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let response = rb_serve::Client::connect(&addr).and_then(|mut client| client.call(&request));
    let response = match response {
        Ok(response) => response,
        Err(e) => {
            eprintln!("error: daemon at {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    println!("{response}");
    let parsed = rb_serve::json::parse(&response).ok();
    let ok = parsed
        .as_ref()
        .and_then(|v| v.get("ok"))
        .and_then(rb_serve::json::Value::as_bool)
        .unwrap_or(false);
    if let Some(path) = &cli.results_out {
        let results = parsed
            .as_ref()
            .and_then(|v| v.get("results_json"))
            .and_then(rb_serve::json::Value::as_str);
        match results {
            Some(results) => {
                if let Err(e) = std::fs::write(path, format!("{results}\n")) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::from(2);
                }
                println!("deterministic results written to {path}");
            }
            None => {
                eprintln!("error: response carries no results_json to write to {path}");
                return ExitCode::from(2);
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `rustbrain analyze <file.mrs>`: run the static lint over one program
/// and print its findings — no oracle run, no repair. Exit code mirrors
/// `check`: success iff the lint raises nothing.
fn analyze_file(file: &str, src: &str, cli: &Cli) -> ExitCode {
    let program = match parse_program(src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::from(2);
        }
    };
    let analysis = rb_lint::analyze(&program);
    if cli.json {
        println!("{}", rb_lint::json::analysis_json(&analysis));
    } else {
        let verdict = if analysis.proves_clean() {
            "proven clean".to_owned()
        } else if analysis.complete {
            format!("{} finding(s) — exact", analysis.findings.len())
        } else {
            format!(
                "{} finding(s) ({} sound) — best effort",
                analysis.findings.len(),
                analysis.sound_count()
            )
        };
        println!("{file}: {verdict}");
        for f in &analysis.findings {
            let at = f
                .path
                .as_ref()
                .map_or(String::new(), |p| format!(" (at {p})"));
            println!(
                "  [{}] {}: {}{} <{}>",
                f.confidence.label(),
                f.class.label(),
                f.message,
                at,
                f.rule,
            );
        }
    }
    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `rustbrain analyze --corpus`: the lint's precision harness. Sweeps the
/// generated seed corpus, tabulating per class how often the lint's top
/// sound finding agrees with the oracle's diagnosis and how often the
/// flow pass proved the full error multiset, then counts sound findings
/// on gold programs (every one is a false positive by construction) and
/// audits the repair-rule library. Exit code enforces the soundness
/// contract: failure iff any gold program draws a sound finding.
fn analyze_corpus(cli: &Cli) -> ExitCode {
    let corpus = rb_dataset::Corpus::generate_full(cli.seed, cli.per_class);
    // Per class: [cases, agree, complete, gold sound findings].
    let mut rows: std::collections::BTreeMap<rb_miri::UbClass, [usize; 4]> =
        std::collections::BTreeMap::new();
    for case in &corpus.cases {
        let analysis = rb_lint::analyze(&case.buggy);
        let report = case.run_buggy();
        let agree = if report.passes() {
            analysis.proves_clean()
        } else {
            analysis.agrees_with(&report)
        };
        let gold_fp = rb_lint::analyze(&case.gold).sound_count();
        let row = rows.entry(case.class).or_insert([0; 4]);
        row[0] += 1;
        row[1] += usize::from(agree);
        row[2] += usize::from(analysis.complete);
        row[3] += gold_fp;
    }
    let total = rows.values().fold([0usize; 4], |acc, r| {
        [acc[0] + r[0], acc[1] + r[1], acc[2] + r[2], acc[3] + r[3]]
    });
    let audit_cases: Vec<(String, rb_lang::Program)> = corpus
        .cases
        .iter()
        .map(|c| (c.id.clone(), c.buggy.clone()))
        .collect();
    let audits = rb_lint::rulecheck::audit_rules(&audit_cases);
    let flagged: Vec<&rb_lint::rulecheck::RuleAudit> =
        audits.iter().filter(|a| a.flagged()).collect();
    if cli.json {
        let by_class: Vec<String> = rows
            .iter()
            .map(|(class, r)| {
                format!(
                    "{{\"class\":\"{}\",\"cases\":{},\"agree\":{},\"complete\":{},\
                     \"gold_sound_findings\":{}}}",
                    class.label(),
                    r[0],
                    r[1],
                    r[2],
                    r[3],
                )
            })
            .collect();
        println!(
            "{{\"seed\":{},\"per_class\":{},\"cases\":{},\"agree\":{},\"complete\":{},\
             \"gold_sound_findings\":{},\"by_class\":[{}],\"rule_audit\":{}}}",
            cli.seed,
            cli.per_class,
            total[0],
            total[1],
            total[2],
            total[3],
            by_class.join(","),
            rb_lint::rulecheck::audits_json(&audits),
        );
    } else {
        println!(
            "analyze: {} cases ({} classes, {} per class) | seed {}\n",
            total[0],
            rows.len(),
            cli.per_class,
            cli.seed,
        );
        println!("class            cases  agree  complete  gold-FPs");
        for (class, r) in &rows {
            println!(
                "{:<16} {:>5} {:>6} {:>9} {:>9}",
                class.label(),
                r[0],
                r[1],
                r[2],
                r[3],
            );
        }
        println!(
            "\noverall: agree {}/{} | complete {}/{} | sound findings on gold programs: {}",
            total[1], total[0], total[2], total[0], total[3],
        );
        println!(
            "rule audit: {} rules, {} produced edits that still trip their own lint",
            audits.len(),
            flagged.len(),
        );
        for audit in &flagged {
            println!(
                "  {:<30} edits {:>2}, still tripping {:>2} ({})",
                audit.rule,
                audit.edits_produced,
                audit.still_trips,
                audit.tripped_cases.join(", "),
            );
        }
    }
    if total[3] == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: sound findings on gold programs — the lint broke its soundness contract");
        ExitCode::FAILURE
    }
}

fn check(src: &str, cli: &Cli) -> ExitCode {
    let program = match parse_program(src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = cli.oracle().judge(&program);
    print!("{report}");
    if report.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn repair(src: &str, cli: &Cli) -> ExitCode {
    let program = match parse_program(src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::from(2);
        }
    };
    let oracle = cli.oracle();
    let report = oracle.judge(&program);
    if report.passes() {
        println!("program already passes the oracle; nothing to repair");
        return ExitCode::SUCCESS;
    }
    print!("{report}");
    let mut config = RustBrainConfig::for_model(cli.model, cli.seed);
    config.temperature = cli.temperature;
    config.use_knowledge = cli.use_knowledge;
    config.preflight = cli.preflight.unwrap_or(true);
    let mut brain = RustBrain::with_oracle(config, oracle);
    let outcome = brain.repair(&program, &cli.reference);
    if let Some(class) = outcome.lint_class {
        println!(
            "static triage: {} ({})",
            class.label(),
            if outcome.lint_agrees {
                "agrees with the oracle"
            } else {
                "heuristic only"
            },
        );
    }
    println!(
        "\n== repaired program ==\n{}",
        print_program(&outcome.final_program)
    );
    println!(
        "passed: {} | acceptable: {}{} | simulated time: {:.1}s | solutions: {} | oracle runs: {}",
        outcome.passed,
        outcome.acceptable,
        if cli.reference.is_empty() {
            " (no --reference given)"
        } else {
            ""
        },
        outcome.overhead_ms / 1000.0,
        outcome.solutions_tried,
        outcome.oracle_runs
    );
    if outcome.oracle_prevetoed > 0 {
        println!(
            "preflight vetoed {} candidate(s) before the oracle",
            outcome.oracle_prevetoed
        );
    }
    if outcome.passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_repair_with_flags() {
        let cli = parse_cli(&argv(
            "repair prog.mrs --model gpt-o1 --temperature 0.3 --seed 7 --no-knowledge --reference 5,true",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Repair("prog.mrs".into()));
        assert_eq!(cli.model, ModelId::GptO1);
        assert_eq!(cli.temperature, 0.3);
        assert_eq!(cli.seed, 7);
        assert!(!cli.use_knowledge);
        assert_eq!(cli.reference, vec!["5".to_owned(), "true".to_owned()]);
    }

    #[test]
    fn defaults_are_papers() {
        let cli = parse_cli(&argv("demo")).unwrap();
        assert_eq!(cli.model, ModelId::Gpt4);
        assert_eq!(cli.temperature, 0.5);
        assert!(cli.use_knowledge);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_cli(&argv("repair")).is_err());
        assert!(parse_cli(&argv("check a --model gpt-9")).is_err());
        assert!(parse_cli(&argv("repair a --temperature 3")).is_err());
        assert!(parse_cli(&argv("frobnicate")).is_err());
    }

    #[test]
    fn parses_corpus_command() {
        let cli = parse_cli(&argv("corpus /tmp/out --seed 9")).unwrap();
        assert_eq!(cli.command, Command::Corpus("/tmp/out".into()));
        assert_eq!(cli.seed, 9);
        assert!(parse_cli(&argv("corpus")).is_err());
    }

    #[test]
    fn help_is_default() {
        assert_eq!(parse_cli(&[]).unwrap().command, Command::Help);
    }

    #[test]
    fn parses_batch_with_engine_flags() {
        let cli = parse_cli(&argv(
            "batch --jobs 4 --per-class 2 --system llm-only --stats-out stats.json --seed 5",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Batch);
        assert_eq!(cli.jobs, 4);
        assert_eq!(cli.per_class, 2);
        assert_eq!(cli.system, BatchSystem::LlmOnly);
        assert_eq!(cli.stats_out.as_deref(), Some("stats.json"));
        assert_eq!(cli.seed, 5);
    }

    #[test]
    fn batch_defaults_and_validation() {
        let cli = parse_cli(&argv("batch")).unwrap();
        assert_eq!(cli.system, BatchSystem::Brain);
        assert!(cli.jobs >= 1);
        assert_eq!(cli.per_class, 3);
        assert!(cli.stats_out.is_none());
        assert!(cli.results_out.is_none());
        assert!(cli.use_cache && cli.cache_cap.is_none());
        assert!(parse_cli(&argv("batch --jobs 0")).is_err());
        assert!(parse_cli(&argv("batch --per-class 0")).is_err());
        assert!(parse_cli(&argv("batch --system gpt-9")).is_err());
    }

    #[test]
    fn parses_kb_persistence_flags() {
        let cli = parse_cli(&argv("batch --kb-in warm.rbkb --kb-out next.rbkb")).unwrap();
        assert_eq!(cli.kb_in.as_deref(), Some("warm.rbkb"));
        assert_eq!(cli.kb_out.as_deref(), Some("next.rbkb"));
        // Either flag alone is fine (cold start + save, or warm + discard).
        assert!(parse_cli(&argv("batch --kb-out only.rbkb")).is_ok());
        assert!(parse_cli(&argv("batch --kb-in only.rbkb")).is_ok());
        // But they are batch-only, and need values.
        assert!(parse_cli(&argv("demo --kb-in warm.rbkb")).is_err());
        assert!(parse_cli(&argv("repair a.mrs --kb-out x.rbkb")).is_err());
        assert!(parse_cli(&argv("batch --kb-in")).is_err());
    }

    #[test]
    fn parses_kb_inspect_subcommand() {
        let cli = parse_cli(&argv("kb inspect store.rbkb")).unwrap();
        assert_eq!(cli.command, Command::KbInspect("store.rbkb".into()));
        assert!(parse_cli(&argv("kb")).is_err());
        assert!(parse_cli(&argv("kb inspect")).is_err());
        assert!(parse_cli(&argv("kb frobnicate x")).is_err());
    }

    #[test]
    fn parses_kb_migrate_and_compact_subcommands() {
        let cli = parse_cli(&argv("kb migrate old.rbkb new.rbkb.d")).unwrap();
        assert_eq!(
            cli.command,
            Command::KbMigrate("old.rbkb".into(), "new.rbkb.d".into())
        );
        assert!(parse_cli(&argv("kb migrate only_src.rbkb")).is_err());

        let cli = parse_cli(&argv("kb compact store.rbkb.d --threshold 0.97")).unwrap();
        assert_eq!(cli.command, Command::KbCompact("store.rbkb.d".into()));
        assert_eq!(cli.threshold, Some(0.97));
        // Omitted: the tightened compaction constant applies at dispatch.
        let cli = parse_cli(&argv("kb compact store.rbkb.d")).unwrap();
        assert_eq!(cli.threshold, None);
        assert!(parse_cli(&argv("kb compact")).is_err());
        assert!(parse_cli(&argv("kb compact s.rbkb --threshold 1.5")).is_err());
        assert!(parse_cli(&argv("kb compact s.rbkb --threshold nope")).is_err());
        // --threshold is compact-only — even at its default value.
        assert!(parse_cli(&argv("batch --threshold 0.9")).is_err());
        assert!(parse_cli(&argv("batch --threshold 0.98")).is_err());
    }

    #[test]
    fn parses_serve_command() {
        let cli = parse_cli(&argv(
            "serve --addr 127.0.0.1:4700 --kb store.rbkb.d --compact-entries 500 --compact-secs 60 --jobs 2",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Serve);
        assert_eq!(cli.addr.as_deref(), Some("127.0.0.1:4700"));
        assert_eq!(cli.kb.as_deref(), Some("store.rbkb.d"));
        assert_eq!(cli.compact_entries, 500);
        assert_eq!(cli.compact_secs, 60);
        assert_eq!(cli.jobs, 2);
        // Defaults: ephemeral flags off, address falls back at dispatch.
        let cli = parse_cli(&argv("serve")).unwrap();
        assert!(cli.addr.is_none());
        assert!(cli.kb.is_none());
        assert_eq!((cli.compact_entries, cli.compact_secs), (0, 0));
    }

    #[test]
    fn parses_client_command() {
        let cli = parse_cli(&argv("client repair prog.mrs --reference 5 --seed 9")).unwrap();
        assert_eq!(
            cli.command,
            Command::Client(ClientVerb::Repair("prog.mrs".into()))
        );
        assert_eq!(cli.seed, 9);
        let cli = parse_cli(&argv(
            "client batch --classes alloc,panic,alloc --per-class 2 --results-out r.json",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Client(ClientVerb::Batch));
        assert_eq!(
            cli.classes,
            Some(vec![rb_miri::UbClass::Alloc, rb_miri::UbClass::Panic])
        );
        assert_eq!(cli.results_out.as_deref(), Some("r.json"));
        for verb in ["stats", "metrics", "compact", "shutdown"] {
            assert!(
                parse_cli(&argv(&format!("client {verb}"))).is_ok(),
                "{verb}"
            );
        }
        assert!(parse_cli(&argv("client")).is_err());
        assert!(parse_cli(&argv("client frobnicate")).is_err());
        assert!(parse_cli(&argv("client repair")).is_err());
        assert!(parse_cli(&argv("client batch --classes nope")).is_err());
    }

    #[test]
    fn serve_flags_are_scoped_to_their_commands() {
        assert!(parse_cli(&argv("batch --addr 127.0.0.1:4700")).is_err());
        assert!(parse_cli(&argv("batch --kb store.rbkb.d")).is_err());
        assert!(parse_cli(&argv("demo --compact-entries 10")).is_err());
        assert!(parse_cli(&argv("demo --compact-secs 10")).is_err());
        assert!(parse_cli(&argv("client stats --classes alloc")).is_err());
        assert!(parse_cli(&argv("serve --classes alloc")).is_err());
        // But --addr works on both sides of the socket.
        assert!(parse_cli(&argv("client stats --addr 127.0.0.1:4700")).is_ok());
    }

    #[test]
    fn trace_out_is_scoped_to_batch_and_serve() {
        let cli = parse_cli(&argv("batch --trace-out trace.jsonl")).unwrap();
        assert_eq!(cli.trace_out.as_deref(), Some("trace.jsonl"));
        let cli = parse_cli(&argv("serve --trace-out trace.jsonl")).unwrap();
        assert_eq!(cli.trace_out.as_deref(), Some("trace.jsonl"));
        assert!(parse_cli(&argv("demo --trace-out t.jsonl")).is_err());
        assert!(parse_cli(&argv("repair a.mrs --trace-out t.jsonl")).is_err());
        assert!(parse_cli(&argv("client stats --trace-out t.jsonl")).is_err());
        assert!(parse_cli(&argv("batch --trace-out")).is_err());
    }

    #[test]
    fn parses_scheduler_flags() {
        // Every accepted spelling of every policy, on both batch and serve.
        for (spelling, policy) in [
            ("fifo", SchedPolicy::Fifo),
            ("cost-ordered", SchedPolicy::CostOrdered),
            ("cost", SchedPolicy::CostOrdered),
            ("lpt", SchedPolicy::CostOrdered),
            ("stealing", SchedPolicy::Stealing),
            ("steal", SchedPolicy::Stealing),
        ] {
            let cli = parse_cli(&argv(&format!("batch --sched {spelling}"))).unwrap();
            assert_eq!(cli.sched, Some(policy), "{spelling}");
            let cli = parse_cli(&argv(&format!("serve --sched {spelling}"))).unwrap();
            assert_eq!(cli.sched, Some(policy), "{spelling}");
        }
        // Unset means the engine default (work-stealing) at dispatch.
        assert_eq!(parse_cli(&argv("batch")).unwrap().sched, None);
        assert!(parse_cli(&argv("batch --sched frobnicate")).is_err());
        assert!(parse_cli(&argv("batch --sched")).is_err());
        assert!(parse_cli(&argv("demo --sched fifo")).is_err());
        assert!(parse_cli(&argv("client stats --sched fifo")).is_err());
    }

    #[test]
    fn cost_table_is_scoped_to_batch() {
        let cli = parse_cli(&argv("batch --cost-table costs.tbl")).unwrap();
        assert_eq!(cli.cost_table.as_deref(), Some("costs.tbl"));
        assert!(parse_cli(&argv("serve --cost-table costs.tbl")).is_err());
        assert!(parse_cli(&argv("demo --cost-table costs.tbl")).is_err());
        assert!(parse_cli(&argv("batch --cost-table")).is_err());
    }

    #[test]
    fn parses_trace_subcommands() {
        let cli = parse_cli(&argv("trace check t.jsonl --coverage 0.9 --require a,b")).unwrap();
        assert_eq!(
            cli.command,
            Command::Trace(TraceVerb::Check("t.jsonl".into()))
        );
        assert_eq!(cli.coverage, Some(0.9));
        assert_eq!(cli.require, Some(vec!["a".to_owned(), "b".to_owned()]));

        let cli = parse_cli(&argv("trace summarize t.jsonl")).unwrap();
        assert_eq!(
            cli.command,
            Command::Trace(TraceVerb::Summarize("t.jsonl".into()))
        );

        let cli = parse_cli(&argv(
            "trace flamegraph t.jsonl --collapsed --measure wall --top 5",
        ))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Trace(TraceVerb::Flamegraph("t.jsonl".into()))
        );
        assert!(cli.collapsed);
        assert_eq!(cli.measure, Some(rb_obs::analyze::Measure::Wall));
        assert_eq!(cli.top, Some(5));

        let cli = parse_cli(&argv("trace critical-path t.jsonl")).unwrap();
        assert_eq!(
            cli.command,
            Command::Trace(TraceVerb::CriticalPath("t.jsonl".into()))
        );

        let cli = parse_cli(&argv("trace diff a.jsonl b.jsonl --top 0")).unwrap();
        assert_eq!(
            cli.command,
            Command::Trace(TraceVerb::Diff("a.jsonl".into(), "b.jsonl".into()))
        );
        assert_eq!(cli.top, Some(0));

        // Missing operands and unknown verbs are errors.
        assert!(parse_cli(&argv("trace")).is_err());
        assert!(parse_cli(&argv("trace check")).is_err());
        assert!(parse_cli(&argv("trace diff only_one.jsonl")).is_err());
        assert!(parse_cli(&argv("trace frobnicate t.jsonl")).is_err());
        // Bad flag values are errors.
        assert!(parse_cli(&argv("trace check t.jsonl --coverage 1.5")).is_err());
        assert!(parse_cli(&argv("trace check t.jsonl --require")).is_err());
        assert!(parse_cli(&argv("trace flamegraph t.jsonl --measure frobnicate")).is_err());
        assert!(parse_cli(&argv("trace flamegraph t.jsonl --top nope")).is_err());
    }

    #[test]
    fn trace_flags_are_scoped_to_their_verbs() {
        assert!(parse_cli(&argv("trace flamegraph t.jsonl --coverage 0.9")).is_err());
        assert!(parse_cli(&argv("trace check t.jsonl --collapsed")).is_err());
        assert!(parse_cli(&argv("trace check t.jsonl --measure sim")).is_err());
        assert!(parse_cli(&argv("trace check t.jsonl --top 5")).is_err());
        assert!(parse_cli(&argv("trace summarize t.jsonl --top 5")).is_err());
        assert!(parse_cli(&argv("batch --coverage 0.9")).is_err());
        assert!(parse_cli(&argv("demo --collapsed")).is_err());
        assert!(parse_cli(&argv("serve --top 5")).is_err());
        // And the trace family rejects flags from other commands.
        assert!(parse_cli(&argv("trace check t.jsonl --trace-out x.jsonl")).is_err());
        assert!(parse_cli(&argv("trace check t.jsonl --sched fifo")).is_err());
    }

    #[test]
    fn parses_analyze_command() {
        let cli = parse_cli(&argv("analyze prog.mrs")).unwrap();
        assert_eq!(
            cli.command,
            Command::Analyze(AnalyzeTarget::File("prog.mrs".into()))
        );
        assert!(!cli.json);
        let cli = parse_cli(&argv("analyze prog.mrs --json")).unwrap();
        assert!(cli.json);
        let cli = parse_cli(&argv("analyze --corpus --json --seed 7 --per-class 2")).unwrap();
        assert_eq!(cli.command, Command::Analyze(AnalyzeTarget::Corpus));
        assert!(cli.json);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.per_class, 2);
        // A file operand is required unless --corpus stands in for it.
        assert!(parse_cli(&argv("analyze")).is_err());
        assert!(parse_cli(&argv("analyze --json")).is_err());
        // --json is analyze-only.
        assert!(parse_cli(&argv("batch --json")).is_err());
        assert!(parse_cli(&argv("check a.mrs --json")).is_err());
        assert!(parse_cli(&argv("client stats --json")).is_err());
    }

    #[test]
    fn parses_client_analyze_verb() {
        let cli = parse_cli(&argv("client analyze prog.mrs --addr 127.0.0.1:4700")).unwrap();
        assert_eq!(
            cli.command,
            Command::Client(ClientVerb::Analyze("prog.mrs".into()))
        );
        assert_eq!(cli.addr.as_deref(), Some("127.0.0.1:4700"));
        assert!(parse_cli(&argv("client analyze")).is_err());
    }

    #[test]
    fn parses_preflight_flags() {
        // Unset means the pipeline default (on) at dispatch.
        assert_eq!(parse_cli(&argv("batch")).unwrap().preflight, None);
        for cmd in ["repair a.mrs", "demo", "batch"] {
            let cli = parse_cli(&argv(&format!("{cmd} --no-preflight"))).unwrap();
            assert_eq!(cli.preflight, Some(false), "{cmd}");
            let cli = parse_cli(&argv(&format!("{cmd} --preflight"))).unwrap();
            assert_eq!(cli.preflight, Some(true), "{cmd}");
        }
        // Scoped to the commands that run the repair pipeline locally.
        assert!(parse_cli(&argv("check a.mrs --no-preflight")).is_err());
        assert!(parse_cli(&argv("analyze a.mrs --preflight")).is_err());
        assert!(parse_cli(&argv("serve --no-preflight")).is_err());
        assert!(parse_cli(&argv("client batch --no-preflight")).is_err());
    }

    #[test]
    fn parses_cache_flags() {
        let cli = parse_cli(&argv("batch --no-cache --results-out r.json")).unwrap();
        assert!(!cli.use_cache);
        assert_eq!(cli.cache_mode(), CacheMode::Direct);
        assert_eq!(cli.results_out.as_deref(), Some("r.json"));
        let cli = parse_cli(&argv("batch --cache-cap 512")).unwrap();
        assert_eq!(cli.cache_cap, Some(512));
        assert_eq!(cli.cache_mode(), CacheMode::Bounded(512));
        assert_eq!(
            parse_cli(&argv("batch")).unwrap().cache_mode(),
            CacheMode::Global
        );
        assert!(parse_cli(&argv("batch --cache-cap 0")).is_err());
        assert!(parse_cli(&argv("batch --no-cache --cache-cap 8")).is_err());
    }
}
