//! Cross-crate integration tests: corpus → oracle → RustBrain → evaluation,
//! exercising the whole stack the way the experiment harness does.

use rb_dataset::{semantically_acceptable, Corpus};
use rb_llm::ModelId;
use rb_miri::{run_program, UbClass};
use rustbrain::{RollbackPolicy, RustBrain, RustBrainConfig};

#[test]
fn every_class_is_repairable_by_a_strong_model() {
    // For each UB class there must exist a case the framework repairs —
    // otherwise a figure's bar could silently be structural zero.
    let corpus = Corpus::generate_full(808, 3);
    let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::GptO1, 5));
    for class in UbClass::ALL {
        let repaired = corpus
            .of_class(class)
            .iter()
            .any(|case| brain.repair(&case.buggy, &case.gold_outputs()).passed);
        assert!(repaired, "no repairable case for class {class}");
    }
}

#[test]
fn repaired_programs_actually_pass_the_oracle() {
    let corpus = Corpus::generate(4, 2, &[UbClass::Alloc, UbClass::Validity, UbClass::Panic]);
    let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 9));
    for case in &corpus.cases {
        let outcome = brain.repair(&case.buggy, &case.gold_outputs());
        if outcome.passed {
            // The outcome's claim must be backed by a fresh oracle run.
            let report = run_program(&outcome.final_program);
            assert!(
                report.passes(),
                "{}: claimed pass but oracle disagrees",
                case.id
            );
            if outcome.acceptable {
                assert!(
                    semantically_acceptable(case, &outcome.final_program),
                    "{}: claimed acceptable but outputs differ",
                    case.id
                );
            }
        }
    }
}

#[test]
fn rustbrain_beats_standalone_on_the_same_corpus() {
    let corpus = Corpus::generate(6, 3, &UbClass::FIG8);
    let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt35, 2));
    let mut alone = rb_baselines::LlmOnly::new(ModelId::Gpt35, 0.5, 2);
    let mut brain_pass = 0;
    let mut alone_pass = 0;
    for case in &corpus.cases {
        let gold = case.gold_outputs();
        brain_pass += usize::from(brain.repair(&case.buggy, &gold).passed);
        alone_pass += usize::from(alone.repair(&case.buggy, &gold).passed);
    }
    assert!(
        brain_pass > alone_pass,
        "RustBrain {brain_pass} vs standalone {alone_pass} on {} cases",
        corpus.len()
    );
}

#[test]
fn adaptive_rollback_bounds_error_growth() {
    // Under the no-rollback policy error counts may grow; adaptive rollback
    // guarantees the best state never regresses across a repair.
    let corpus = Corpus::generate(17, 2, &[UbClass::StackBorrow, UbClass::DataRace]);
    for policy in [RollbackPolicy::Adaptive, RollbackPolicy::None] {
        let mut cfg = RustBrainConfig::for_model(ModelId::Gpt35, 3);
        cfg.rollback = policy;
        let mut brain = RustBrain::new(cfg);
        for case in &corpus.cases {
            let outcome = brain.repair(&case.buggy, &case.gold_outputs());
            let initial = outcome.error_history[0];
            let final_best = outcome
                .error_history
                .iter()
                .min()
                .copied()
                .unwrap_or(initial);
            if policy == RollbackPolicy::Adaptive {
                assert!(
                    final_best <= initial,
                    "{}: adaptive rollback ended worse than it started",
                    case.id
                );
            }
        }
    }
}

#[test]
fn knowledge_base_grows_only_on_success() {
    let corpus = Corpus::generate(23, 2, &[UbClass::Validity]);
    let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::GptO1, 4));
    let mut successes = 0;
    for case in &corpus.cases {
        let before = brain.knowledge().len();
        let outcome = brain.repair(&case.buggy, &case.gold_outputs());
        let after = brain.knowledge().len();
        if outcome.passed && outcome.rules_applied.iter().any(|_| true) {
            successes += 1;
        }
        assert!(after >= before);
        assert!(after <= before + 1, "at most one KB entry per repair");
    }
    assert!(successes > 0);
}

#[test]
fn overhead_accounting_is_consistent() {
    let corpus = Corpus::generate(29, 1, &[UbClass::DanglingPointer]);
    let case = &corpus.cases[0];
    let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 11));
    let outcome = brain.repair(&case.buggy, &case.gold_outputs());
    // Overhead must cover at least the model latency actually spent.
    assert!(outcome.overhead_ms >= brain.model_stats().total_latency_ms * 0.5);
    assert!(
        outcome.overhead_ms < 3_600_000.0,
        "bounded by an hour of simulated time"
    );
}

#[test]
fn full_stack_determinism() {
    let run_once = || {
        let corpus = Corpus::generate(31, 1, &UbClass::FIG10);
        let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::Claude35, 13));
        corpus
            .cases
            .iter()
            .map(|c| {
                let o = brain.repair(&c.buggy, &c.gold_outputs());
                (
                    o.passed,
                    o.acceptable,
                    o.oracle_runs,
                    o.overhead_ms.to_bits(),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run_once(),
        run_once(),
        "whole-stack runs must be bit-identical"
    );
}

#[test]
fn quickstart_smoke_path() {
    // The exact path the crates/core quickstart doctest (and README)
    // advertises: parse a buggy program, repair it, and observe a passing,
    // oracle-verified outcome whose final program no longer exhibits UB.
    let buggy = rb_lang::parser::parse_program(
        "fn main() { let q: *const i32 = 0 as *const i32; \
         { let x: i32 = 5; q = &raw const x; } \
         unsafe { print(*q); } }",
    )
    .expect("quickstart program parses");
    assert!(
        !run_program(&buggy).passes(),
        "quickstart program must exhibit UB"
    );

    let mut brain = RustBrain::new(RustBrainConfig::for_model(ModelId::Gpt4, 42));
    let outcome = brain.repair(&buggy, &["5".to_owned()]);
    assert!(outcome.passed, "quickstart repair must pass the oracle");
    let report = run_program(&outcome.final_program);
    assert!(
        report.passes(),
        "final program re-checked clean: {:?}",
        report.errors
    );
    assert_eq!(
        report.outputs,
        vec!["5".to_owned()],
        "repair must preserve the observable output"
    );
}
