//! Property-based tests over the language substrate and the oracle,
//! using the corpus templates as structured generators.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rb_dataset::all_templates;
use rb_lang::check::check_program;
use rb_lang::parser::parse_program;
use rb_lang::printer::print_program;
use rb_lang::prune::prune_program;
use rb_lang::vectorize::AstVector;
use rb_miri::run_program;

/// Strategy: an arbitrary (template, seed) instantiation — a structured
/// random program generator covering every UB class.
fn template_programs() -> impl Strategy<Value = (String, String)> {
    (0usize..all_templates().len(), any::<u64>()).prop_map(|(ti, seed)| {
        let t = all_templates()[ti];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let s = (t.make)(&mut rng);
        (s.buggy, s.gold)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Printing then parsing is the identity on every generated program.
    #[test]
    fn print_parse_roundtrip((buggy, gold) in template_programs()) {
        for src in [buggy, gold] {
            let p = parse_program(&src).expect("template programs parse");
            let printed = print_program(&p);
            let reparsed = parse_program(&printed).expect("printed form reparses");
            prop_assert_eq!(&p, &reparsed);
        }
    }

    /// Every generated program is well-formed for the static checker.
    #[test]
    fn templates_are_well_formed((buggy, gold) in template_programs()) {
        for src in [buggy, gold] {
            let p = parse_program(&src).expect("parse");
            let errs = check_program(&p);
            prop_assert!(errs.is_empty(), "checker rejected template: {:?}", errs);
        }
    }

    /// The oracle is deterministic: identical programs yield identical
    /// reports (errors, outputs and step counts).
    #[test]
    fn oracle_is_deterministic((buggy, _) in template_programs()) {
        let p = parse_program(&buggy).expect("parse");
        let a = run_program(&p);
        let b = run_program(&p);
        prop_assert_eq!(a, b);
    }

    /// Gold programs pass; buggy programs fail — on every instantiation,
    /// not just the seeds the corpus tests happen to draw.
    #[test]
    fn buggy_fails_gold_passes((buggy, gold) in template_programs()) {
        let b = parse_program(&buggy).expect("parse");
        let g = parse_program(&gold).expect("parse");
        prop_assert!(!run_program(&b).passes(), "buggy program passed:\n{}", buggy);
        let greport = run_program(&g);
        prop_assert!(greport.passes(), "gold failed: {:?}\n{}", greport.errors, gold);
    }

    /// Pruning (Algorithm 1) never increases program size and never
    /// removes `unsafe` blocks.
    #[test]
    fn pruning_shrinks_and_keeps_unsafe((buggy, _) in template_programs()) {
        let p = parse_program(&buggy).expect("parse");
        let (pruned, removed) = prune_program(&p);
        prop_assert!(pruned.stmt_count() + removed == p.stmt_count());
        let unsafe_before = rb_lang::metrics::collect_metrics(&p).unsafe_blocks;
        let unsafe_after = rb_lang::metrics::collect_metrics(&pruned).unsafe_blocks;
        prop_assert_eq!(unsafe_before, unsafe_after);
    }

    /// AST vectors are well-behaved: self-similarity 1, symmetry, and
    /// values within [-1, 1].
    #[test]
    fn vector_similarity_is_metric_like((a, _) in template_programs(),
                                        (b, _) in template_programs()) {
        let pa = parse_program(&a).expect("parse");
        let pb = parse_program(&b).expect("parse");
        let va = AstVector::embed(&pa);
        let vb = AstVector::embed(&pb);
        prop_assert!((va.cosine(&va) - 1.0).abs() < 1e-9);
        prop_assert!((va.cosine(&vb) - vb.cosine(&va)).abs() < 1e-12);
        prop_assert!((-1.0..=1.0 + 1e-12).contains(&va.cosine(&vb)));
    }

    /// The oracle's step counter grows with work but stays within budget.
    #[test]
    fn oracle_steps_bounded((buggy, _) in template_programs()) {
        let p = parse_program(&buggy).expect("parse");
        let report = run_program(&p);
        prop_assert!(report.steps > 0);
        prop_assert!(report.steps <= 200_000);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Integer wrap is idempotent and respects range membership.
    #[test]
    fn int_wrap_idempotent(v in any::<i64>(), ti in 0usize..10) {
        let t = rb_lang::IntTy::ALL[ti];
        let w = t.wrap(i128::from(v));
        prop_assert!(t.in_range(w));
        prop_assert_eq!(t.wrap(w), w);
    }

    /// Lexing never panics on arbitrary ASCII input.
    #[test]
    fn lexer_total_on_ascii(s in "[ -~]{0,200}") {
        let _ = rb_lang::lexer::lex(&s);
    }

    /// Parsing arbitrary token soup never panics (errors are fine).
    #[test]
    fn parser_total_on_ascii(s in "[a-z0-9{}()*&;=<>+,._ -]{0,200}") {
        let _ = parse_program(&s);
    }
}
